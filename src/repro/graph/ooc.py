"""Out-of-core CSR storage: memmap-spilled adjacency columns, tracked unlink.

A resident :class:`~repro.graph.dodgr.CSRAdjacency` keeps every per-edge
column (target order-ids, owners, wire-size prefix sums) plus the row
kernels' composite-key array in process memory — O(|E|) int64 words each,
which is the wall the paper's "massive-scale" surveys care about.  This
module spills those columns to ``np.memmap`` segment files so the operating
system pages them in on demand: the survey's working set becomes the chunked
candidate stream (bounded by :attr:`StorageConfig.chunk_candidates`, derived
from the configured memory budget) instead of the whole graph.

What spills and what stays:

* **spilled** — ``tgt_ids``, ``indptr``, ``tgt_owner``, ``tgt_wire_sizes``,
  ``cand_size_cumsum`` and the precomputed
  :class:`~repro.core.intersection.RowAdjacency` composite-key array; the
  ``columns()`` namespace is rebuilt over the memmaps, so every engine
  driver reads the same (now disk-backed) arrays with no code fork.
* **resident** — the ``entries`` metadata tuples and the record-view store.
  Metadata payloads are arbitrary Python objects and cannot be memmapped;
  counting surveys (``callback=None``) never touch them, which is what the
  beyond-RAM benchmark exercises.  This is the documented limitation of the
  mmap storage tier (see ``docs/kernels.md``).

Segment lifecycle mirrors the tracked-registry pattern of
:mod:`repro.runtime.backend.shm`: every created segment file is recorded in
a module-level registry (:func:`active_segment_paths`), every exit path of
the owning :class:`~repro.graph.dodgr.DODGraph` — normal release, exception,
``LivelockError`` abort — ends in :func:`unlink_paths`, and
:func:`sweep_prefix` is the belt-and-braces pass that reclaims run-prefixed
files a crashed process never released.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, replace
from types import SimpleNamespace
from typing import Any, Iterable, List, Optional, Set, Tuple

try:  # NumPy is required for the mmap storage tier (resident needs nothing).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via resolve_storage errors
    _np = None

__all__ = [
    "STORAGES",
    "DEFAULT_BUDGET_BYTES",
    "StorageConfig",
    "resolve_storage",
    "spill_csr",
    "stage_send_columns",
    "release_csr_segments",
    "unlink_paths",
    "sweep_prefix",
    "active_segment_paths",
]

#: The storage axis, resident first (the default everywhere).
STORAGES: Tuple[str, ...] = ("resident", "mmap")

#: Default memory budget when ``mmap`` storage is configured without one.
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024

#: Absolute paths of segment files this process believes exist on disk.
#: Mirrors ``runtime.backend.shm._ACTIVE``: spillers add, every unlink path
#: removes, and the out-of-core benchmark asserts emptiness after release.
_ACTIVE: Set[str] = set()

#: Monotonic counter making each spill's file prefix unique within a process.
_SPILL_SEQ = [0]


def resolve_storage(storage: Any = None) -> str:
    """Normalise a ``storage=`` selector to a known storage mode.

    ``None`` selects resident storage — the default everywhere, so existing
    callers are untouched by the storage axis.  ``"mmap"`` additionally
    requires NumPy (the spilled columns are ``np.memmap`` arrays).
    """
    if storage is None:
        return "resident"
    if isinstance(storage, str) and storage in STORAGES:
        if storage == "mmap" and _np is None:
            raise ValueError("storage='mmap' requires NumPy (np.memmap segments)")
        return storage
    raise ValueError(f"unknown storage mode {storage!r}; known: {STORAGES}")


@dataclass(frozen=True)
class StorageConfig:
    """How a :class:`~repro.graph.dodgr.DODGraph` stores its CSR snapshots.

    Parameters
    ----------
    mode:
        ``"resident"`` (default: today's in-memory arrays) or ``"mmap"``
        (columns spilled to segment files under ``directory``).
    budget_bytes:
        Target peak size of the survey's transient working set under mmap
        storage; sizes the chunked candidate streams.  ``None`` uses
        :data:`DEFAULT_BUDGET_BYTES`.
    directory:
        Where segment files live (``None``: the system temp directory).
    chunk_candidates:
        Explicit candidate-stream chunk length; ``None`` derives one from
        ``budget_bytes`` (the drivers/handlers keep roughly
        ``chunk_candidates`` concatenated int64 candidates — plus the
        same-order index arrays — alive at once).
    """

    mode: str = "resident"
    budget_bytes: Optional[int] = None
    directory: Optional[str] = None
    chunk_candidates: Optional[int] = None

    def resolved_budget(self) -> int:
        return self.budget_bytes if self.budget_bytes else DEFAULT_BUDGET_BYTES

    def resolved_directory(self) -> str:
        return self.directory or tempfile.gettempdir()

    def resolved_chunk_candidates(self) -> Optional[int]:
        """Candidate-stream chunk length, or None when chunking is off."""
        if self.mode != "mmap":
            return None
        if self.chunk_candidates:
            return max(int(self.chunk_candidates), 256)
        # ~16 transient int64-ish words ride along per concatenated
        # candidate (keys, flat positions, per-wedge size/dest columns and
        # their argsorted twins), so budget/128 keys keeps the per-chunk
        # working set near budget/8 — leaving ample headroom for the
        # payload slices that stay enqueued until the barrier.
        return max(self.resolved_budget() // 128, 256)

    def with_mode(self, mode: str) -> "StorageConfig":
        return replace(self, mode=resolve_storage(mode))


# ---------------------------------------------------------------------------
# Tracked segment files
# ---------------------------------------------------------------------------


def active_segment_paths() -> frozenset:
    """The tracked registry: segment file paths believed on disk right now."""
    return frozenset(_ACTIVE)


def unlink_paths(paths: Iterable[str]) -> None:
    """Unlink every named segment file, tolerating ones already gone."""
    for path in list(paths):
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - platform-specific unlink races
            pass
        _ACTIVE.discard(path)


def sweep_prefix(directory: str, prefix: str) -> List[str]:
    """Reclaim prefix-named segment files a crashed process never released.

    Best-effort directory scan, the analogue of
    :func:`repro.runtime.backend.shm.sweep_prefix`; returns the paths it
    removed.  The tracked registry entries under the prefix are dropped
    whether or not their files were still present.
    """
    removed: List[str] = []
    for path in [p for p in _ACTIVE if os.path.basename(p).startswith(prefix)]:
        _ACTIVE.discard(path)
    if not prefix or not os.path.isdir(directory):
        return removed
    for entry in os.listdir(directory):
        if not entry.startswith(prefix):
            continue
        path = os.path.join(directory, entry)
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced by another cleanup
            continue
        removed.append(path)
    return removed


# ---------------------------------------------------------------------------
# Spilling
# ---------------------------------------------------------------------------

#: Rows per block when streaming columns into a memmap: bounds the transient
#: conversion buffers to a few MB regardless of graph size.
_COPY_CHUNK = 1 << 18


def _new_memmap(directory: str, prefix: str, name: str, length: int):
    """Create (and track) one int64 segment file of ``length`` elements.

    Zero-length columns still get a real (one-element) file so the unlink
    bookkeeping is uniform; the returned array is sliced back to length.
    """
    path = os.path.join(directory, f"{prefix}{name}.seg")
    mm = _np.memmap(path, dtype=_np.int64, mode="w+", shape=(max(length, 1),))
    _ACTIVE.add(path)
    return mm[:length], path


def _fill_chunked(target, source) -> None:
    """Stream ``source`` (list or array) into ``target`` in bounded chunks."""
    n = len(source)
    for lo in range(0, n, _COPY_CHUNK):
        hi = min(lo + _COPY_CHUNK, n)
        target[lo:hi] = _np.asarray(source[lo:hi], dtype=_np.int64)


def spill_csr(csr, order_count: int, config: StorageConfig) -> List[str]:
    """Spill one CSR snapshot's column arrays to tracked memmap segments.

    Replaces the snapshot's O(|E|) columns (``tgt_ids``, ``indptr``,
    ``tgt_owner``, ``tgt_wire_sizes``, ``cand_size_cumsum``) with disk-backed
    twins, rebuilds the ``columns()`` namespace over them, and pre-computes
    the row kernels' composite-key array straight into its own segment (the
    lazy in-memory build would otherwise resurrect an O(|E|) resident
    array mid-survey).  Tags the snapshot (``csr.storage``/
    ``csr.segment_paths``) and returns the created paths; the owning
    :class:`~repro.graph.dodgr.DODGraph` unlinks them on every exit path.
    """
    if _np is None:  # pragma: no cover - guarded by resolve_storage
        raise RuntimeError("mmap storage requires NumPy")
    from ..core.intersection import RowAdjacency  # deferred: core imports graph

    directory = config.resolved_directory()
    _SPILL_SEQ[0] += 1
    prefix = f"repro-ooc-{os.getpid()}-{_SPILL_SEQ[0]}-"
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []

    def spill(name: str, source, length: int):
        mm, path = _new_memmap(directory, prefix, name, length)
        _fill_chunked(mm, source)
        mm.flush()
        paths.append(path)
        return mm

    num_edges = csr.num_edges
    tgt_ids = spill("tgt_ids", csr.tgt_ids, num_edges)
    indptr = spill("indptr", csr.indptr, csr.num_rows + 1)
    tgt_owner = spill("tgt_owner", csr.tgt_owner, num_edges)
    tgt_wire = spill("tgt_wire", csr.tgt_wire_sizes, num_edges)
    cand_cumsum = spill("cand_cumsum", csr.cand_size_cumsum, num_edges + 1)

    # Composite keys (edge_row * order_count + key), built block-wise so the
    # transient never exceeds the copy chunk.
    composite, comp_path = _new_memmap(directory, prefix, "composite", num_edges)
    stride = _np.int64(order_count)
    for row_lo in range(0, csr.num_rows, _COPY_CHUNK):
        row_hi = min(row_lo + _COPY_CHUNK, csr.num_rows)
        lo, hi = int(indptr[row_lo]), int(indptr[row_hi])
        lengths = _np.asarray(indptr[row_lo + 1 : row_hi + 1]) - _np.asarray(
            indptr[row_lo:row_hi]
        )
        edge_rows = _np.repeat(
            _np.arange(row_lo, row_hi, dtype=_np.int64), lengths
        )
        composite[lo:hi] = edge_rows * stride + tgt_ids[lo:hi]
    composite.flush()
    paths.append(comp_path)

    # Swap the resident columns for their disk-backed twins.  The scalar
    # drivers index these exactly as they indexed the lists; the row/batch
    # kernels see plain int64 arrays.
    csr.tgt_ids = tgt_ids
    csr.indptr = indptr
    csr.tgt_owner = tgt_owner
    csr.tgt_wire_sizes = tgt_wire
    csr.cand_size_cumsum = cand_cumsum
    csr._columns = SimpleNamespace(
        indptr=indptr,
        tgt_owner=tgt_owner,
        row_wire=_np.asarray(csr.row_wire_sizes, dtype=_np.int64),
        tgt_wire=tgt_wire,
        cand_cumsum=cand_cumsum,
        row_order_ids=_np.asarray(csr.row_order_ids, dtype=_np.int64),
    )
    adjacency = RowAdjacency(tgt_ids, indptr, order_count)
    adjacency._composite = composite
    csr.row_adj_cache = adjacency
    csr.storage = "mmap"
    csr.segment_paths = paths
    return paths


def stage_send_columns(csr, rows_sorted, qpos_sorted):
    """Stage one drive's sorted send columns in a disk-backed scratch segment.

    The simulated world enqueues batched push payloads until the barrier
    delivers them, so the driver's ``rows_sorted``/``qpos_sorted`` slices —
    O(|E|) across all ranks — would otherwise stay resident for the whole
    drive phase and defeat the memory budget.  Under mmap storage the
    columns are copied into a per-snapshot scratch memmap (created on first
    use, reused and regrown across drives, unlinked with the snapshot's
    other segments) and the returned disk-backed views are what the driver
    slices into payloads; the in-memory originals die when the drive
    returns.  Resident snapshots pass straight through.
    """
    if _np is None or getattr(csr, "storage", "resident") != "mmap":
        return rows_sorted, qpos_sorted
    n = int(len(rows_sorted))
    scratch = csr.send_scratch
    if scratch is None or scratch[1] < n:
        if scratch is not None:
            unlink_paths([scratch[2]])
            if scratch[2] in csr.segment_paths:
                csr.segment_paths.remove(scratch[2])
        directory = (
            os.path.dirname(csr.segment_paths[0])
            if csr.segment_paths
            else tempfile.gettempdir()
        )
        _SPILL_SEQ[0] += 1
        prefix = f"repro-ooc-{os.getpid()}-{_SPILL_SEQ[0]}-"
        capacity = max(n, 1)
        path = os.path.join(directory, f"{prefix}send_scratch.seg")
        mm = _np.memmap(path, dtype=_np.int64, mode="w+", shape=(2, capacity))
        _ACTIVE.add(path)
        csr.segment_paths.append(path)
        scratch = (mm, capacity, path)
        csr.send_scratch = scratch
    mm = scratch[0]
    staged_rows = mm[0, :n]
    staged_qpos = mm[1, :n]
    _fill_chunked(staged_rows, _np.asarray(rows_sorted, dtype=_np.int64))
    _fill_chunked(staged_qpos, _np.asarray(qpos_sorted, dtype=_np.int64))
    return staged_rows, staged_qpos


def release_csr_segments(csr) -> None:
    """Unlink one snapshot's segment files (idempotent, exception-safe)."""
    paths = getattr(csr, "segment_paths", None)
    if paths:
        unlink_paths(paths)
        csr.segment_paths = []
    if getattr(csr, "send_scratch", None) is not None:
        csr.send_scratch = None
