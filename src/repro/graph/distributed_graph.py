"""Distributed undirected decorated graph (the pre-DODGr representation).

Vertices are partitioned across ranks by a :class:`~repro.graph.partition.Partitioner`;
each rank stores, for its local vertices, the vertex metadata and the full
undirected adjacency with per-edge metadata.  This is the structure the
degree-ordered directed graph (:mod:`repro.graph.dodgr`) is built from, and
it also backs the baseline algorithms that do not use degree ordering.

Construction offers two paths:

* :meth:`DistributedGraph.from_edges` / :meth:`add_edge` — driver-side bulk
  loading, used by generators and benchmarks where graph construction is not
  the phase being measured;
* :meth:`DistributedGraph.ingest_async` — message-driven loading through the
  simulated YGM runtime, exercising the same code path a real deployment
  would use and accounted in the communication statistics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from itertools import repeat

from ..runtime.world import RankContext, World
from .columnar import group_slices
from .edge_list import DistributedEdgeList, canonical_pair, validate_edge_columns
from .partition import HashPartitioner, Partitioner

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

__all__ = ["DistributedGraph"]


class DistributedGraph:
    """An undirected graph with vertex/edge metadata, partitioned by vertex."""

    def __init__(
        self,
        world: World,
        partitioner: Optional[Partitioner] = None,
        name: Optional[str] = None,
        default_vertex_meta: Any = None,
    ) -> None:
        self.world = world
        self.partitioner = partitioner if partitioner is not None else HashPartitioner(world.nranks)
        if self.partitioner.nranks != world.nranks:
            raise ValueError(
                f"partitioner is for {self.partitioner.nranks} ranks but world has {world.nranks}"
            )
        if name is None:
            name = world.anonymous_name("graph")
        self.name = world.unique_name(name)
        self.default_vertex_meta = default_vertex_meta
        for ctx in world.ranks:
            ctx.local_state.setdefault(self._slot, {})
        self._h_add_half_edge = world.register_handler(
            self._handle_add_half_edge, f"{self.name}.add_half_edge"
        )
        self._h_set_vertex_meta = world.register_handler(
            self._handle_set_vertex_meta, f"{self.name}.set_vertex_meta"
        )

    # ------------------------------------------------------------------
    @property
    def _slot(self) -> str:
        return f"graph:{self.name}"

    def owner(self, vertex: Hashable) -> int:
        return self.partitioner.owner(vertex)

    def local_store(self, rank_or_ctx: int | RankContext) -> Dict[Hashable, Dict[str, Any]]:
        ctx = (
            rank_or_ctx
            if isinstance(rank_or_ctx, RankContext)
            else self.world.rank(rank_or_ctx)
        )
        return ctx.local_state[self._slot]

    def _vertex_record(
        self, store: Dict[Hashable, Dict[str, Any]], vertex: Hashable
    ) -> Dict[str, Any]:
        record = store.get(vertex)
        if record is None:
            record = {"meta": self.default_vertex_meta, "adj": {}}
            store[vertex] = record
        return record

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _handle_add_half_edge(
        self, ctx: RankContext, u: Hashable, v: Hashable, edge_meta: Any
    ) -> None:
        record = self._vertex_record(self.local_store(ctx), u)
        record["adj"][v] = edge_meta

    def _handle_set_vertex_meta(self, ctx: RankContext, vertex: Hashable, meta: Any) -> None:
        record = self._vertex_record(self.local_store(ctx), vertex)
        record["meta"] = meta

    # ------------------------------------------------------------------
    # Driver-side construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Hashable, meta: Any = None) -> None:
        record = self._vertex_record(self.local_store(self.owner(vertex)), vertex)
        if meta is not None or record["meta"] is None:
            record["meta"] = meta if meta is not None else self.default_vertex_meta

    def set_vertex_meta(self, vertex: Hashable, meta: Any) -> None:
        self._vertex_record(self.local_store(self.owner(vertex)), vertex)["meta"] = meta

    def add_edge(self, u: Hashable, v: Hashable, edge_meta: Any = None) -> None:
        """Insert the undirected edge (u, v); both half edges are stored."""
        if u == v:
            return
        self._vertex_record(self.local_store(self.owner(u)), u)["adj"][v] = edge_meta
        self._vertex_record(self.local_store(self.owner(v)), v)["adj"][u] = edge_meta

    @classmethod
    def from_edges(
        cls,
        world: World,
        edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
        vertex_meta: Optional[Dict[Hashable, Any]] = None,
        partitioner: Optional[Partitioner] = None,
        default_vertex_meta: Any = None,
        name: Optional[str] = None,
    ) -> "DistributedGraph":
        """Bulk-construct a graph from an iterable of edges.

        Edges may be ``(u, v)`` or ``(u, v, edge_meta)``.  Parallel edges keep
        the last metadata seen; self loops are dropped.
        """
        graph = cls(
            world,
            partitioner=partitioner,
            name=name,
            default_vertex_meta=default_vertex_meta,
        )
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                meta = None
            else:
                u, v, meta = edge  # type: ignore[misc]
            graph.add_edge(u, v, meta)
        if vertex_meta:
            for vertex, meta in vertex_meta.items():
                graph.set_vertex_meta(vertex, meta)
        return graph

    @classmethod
    def from_columns(
        cls,
        world: World,
        us: Any,
        vs: Any,
        edge_meta: Any = None,
        edge_metas: Optional[List[Any]] = None,
        vertex_meta: Optional[Dict[Hashable, Any]] = None,
        partitioner: Optional[Partitioner] = None,
        default_vertex_meta: Any = None,
        name: Optional[str] = None,
    ) -> "DistributedGraph":
        """Bulk-construct from parallel integer endpoint columns.

        Bit-identical to ``from_edges(zip(us, vs, ...))`` — same per-rank
        store insertion order, same adjacency-dict key order, same
        duplicate-edge overwrite semantics, same self-loop drops — but the
        per-edge owner lookups collapse into one vectorized partition-map
        evaluation and the per-vertex records are assembled group-at-a-time
        from one stable sort of the half-edge stream.  ``edge_meta`` is a
        value shared by every edge (the generator default); ``edge_metas``
        supplies one value per input edge.

        Malformed columns — ragged lengths, non-integer dtype, negative
        ids — raise :class:`ValueError` naming the offending column.
        """
        validate_edge_columns(us, vs, edge_metas)
        graph = cls(
            world,
            partitioner=partitioner,
            name=name,
            default_vertex_meta=default_vertex_meta,
        )
        us_arr = None
        vs_arr = None
        if _np is not None:
            try:
                us_arr = _np.asarray(us, dtype=_np.int64)
                vs_arr = _np.asarray(vs, dtype=_np.int64)
            except OverflowError:  # ids beyond int64: per-edge fallback
                us_arr = None
        if us_arr is None:
            metas = edge_metas if edge_metas is not None else repeat(edge_meta)
            for u, v, meta in zip(us, vs, metas):
                graph.add_edge(int(u), int(v), meta)
        else:
            keep = us_arr != vs_arr
            us_arr, vs_arr = us_arr[keep], vs_arr[keep]
            edge_index = _np.flatnonzero(keep)
            num_edges = len(us_arr)
            if num_edges:
                # The half-edge stream of from_edges: edge i contributes
                # (u_i -> v_i) at position 2i and (v_i -> u_i) at 2i + 1.
                ends = _np.empty(2 * num_edges, dtype=_np.int64)
                partners = _np.empty(2 * num_edges, dtype=_np.int64)
                ends[0::2], ends[1::2] = us_arr, vs_arr
                partners[0::2], partners[1::2] = vs_arr, us_arr
                owners = graph.partitioner.owners_array(ends)
                order = _np.lexsort((ends, owners))
                own_sorted_arr = owners[order]
                vtx_sorted_arr = ends[order]
                own_sorted = own_sorted_arr.tolist()
                vtx_sorted = vtx_sorted_arr.tolist()
                part_sorted = partners[order].tolist()
                stream_sorted = order.tolist()
                # One group per (owner, vertex); lexsort stability keeps each
                # group's half edges in stream order, so the group's head is
                # the vertex's first appearance.
                groups = [
                    (own_sorted[start], stream_sorted[start], start, end)
                    for start, end in group_slices(own_sorted_arr, vtx_sorted_arr)
                ]
                # Store records in first-appearance order per rank — the
                # dict insertion order the per-edge loop produces.
                groups.sort()
                meta_by_edge = None
                if edge_metas is not None:
                    meta_by_edge = [edge_metas[k] for k in edge_index.tolist()]
                for owner_rank, _first, i, j in groups:
                    store = graph.local_store(owner_rank)
                    if meta_by_edge is None:
                        adj = dict(zip(part_sorted[i:j], repeat(edge_meta)))
                    else:
                        adj = dict(
                            zip(
                                part_sorted[i:j],
                                (meta_by_edge[s >> 1] for s in stream_sorted[i:j]),
                            )
                        )
                    store[vtx_sorted[i]] = {
                        "meta": graph.default_vertex_meta,
                        "adj": adj,
                    }
        if vertex_meta:
            for vertex, meta in vertex_meta.items():
                graph.set_vertex_meta(vertex, meta)
        return graph

    @classmethod
    def from_edge_list(
        cls,
        edge_list: DistributedEdgeList,
        vertex_meta: Optional[Dict[Hashable, Any]] = None,
        partitioner: Optional[Partitioner] = None,
        default_vertex_meta: Any = None,
        name: Optional[str] = None,
    ) -> "DistributedGraph":
        """Construct from a (preferably simplified) distributed edge list."""
        return cls.from_edges(
            edge_list.world,
            edge_list.records(),
            vertex_meta=vertex_meta,
            partitioner=partitioner,
            default_vertex_meta=default_vertex_meta,
            name=name,
        )

    # ------------------------------------------------------------------
    # Message-driven construction (exercises the runtime)
    # ------------------------------------------------------------------
    def ingest_async(
        self,
        edges_per_rank: List[List[Tuple[Hashable, Hashable, Any]]],
        vertex_meta_per_rank: Optional[List[Dict[Hashable, Any]]] = None,
    ) -> None:
        """Load edges through the asynchronous runtime.

        ``edges_per_rank[r]`` is the list of records initially resident on
        rank ``r`` (as if read from a partitioned input file); each record is
        routed to the owners of both endpoints as half-edge insertions.
        """
        if len(edges_per_rank) != self.world.nranks:
            raise ValueError("edges_per_rank must have one entry per rank")
        self.world.begin_phase(f"{self.name}.ingest")
        for ctx, records in zip(self.world.ranks, edges_per_rank):
            for u, v, meta in records:
                if u == v:
                    continue
                ctx.async_call_sized(self.owner(u), self._h_add_half_edge, u, v, meta)
                ctx.async_call_sized(self.owner(v), self._h_add_half_edge, v, u, meta)
        if vertex_meta_per_rank is not None:
            if len(vertex_meta_per_rank) != self.world.nranks:
                raise ValueError("vertex_meta_per_rank must have one entry per rank")
            for ctx, metas in zip(self.world.ranks, vertex_meta_per_rank):
                for vertex, meta in metas.items():
                    ctx.async_call(self.owner(vertex), self._h_set_vertex_meta, vertex, meta)
        self.world.barrier()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_vertex(self, vertex: Hashable) -> bool:
        return vertex in self.local_store(self.owner(vertex))

    def vertex_meta(self, vertex: Hashable) -> Any:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            raise KeyError(f"vertex {vertex!r} not in graph")
        return record["meta"]

    def edge_meta(self, u: Hashable, v: Hashable) -> Any:
        record = self.local_store(self.owner(u)).get(u)
        if record is None or v not in record["adj"]:
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        return record["adj"][v]

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        record = self.local_store(self.owner(u)).get(u)
        return record is not None and v in record["adj"]

    def neighbors(self, vertex: Hashable) -> List[Hashable]:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            return []
        return list(record["adj"].keys())

    def degree(self, vertex: Hashable) -> int:
        record = self.local_store(self.owner(vertex)).get(vertex)
        return len(record["adj"]) if record is not None else 0

    def num_vertices(self) -> int:
        return sum(len(self.local_store(r)) for r in range(self.world.nranks))

    def num_undirected_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return self.num_directed_edges() // 2

    def num_directed_edges(self) -> int:
        """Number of stored half edges — the paper's symmetrized edge count."""
        total = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                total += len(record["adj"])
        return total

    def max_degree(self) -> int:
        best = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                if len(record["adj"]) > best:
                    best = len(record["adj"])
        return best

    def vertices(self) -> Iterator[Hashable]:
        for rank in range(self.world.nranks):
            yield from self.local_store(rank).keys()

    def local_vertices(self, rank: int) -> Iterator[Tuple[Hashable, Dict[str, Any]]]:
        yield from self.local_store(rank).items()

    def edges(self) -> Iterator[Tuple[Hashable, Hashable, Any]]:
        """Iterate undirected edges once each (canonical orientation)."""
        for rank in range(self.world.nranks):
            for u, record in self.local_store(rank).items():
                for v, meta in record["adj"].items():
                    if canonical_pair(u, v)[0] == u:
                        yield (u, v, meta)

    def degrees(self) -> Dict[Hashable, int]:
        return {u: len(record["adj"]) for rank in range(self.world.nranks)
                for u, record in self.local_store(rank).items()}

    def rank_vertex_counts(self) -> List[int]:
        return [len(self.local_store(r)) for r in range(self.world.nranks)]

    def rank_edge_counts(self) -> List[int]:
        out = []
        for rank in range(self.world.nranks):
            out.append(sum(len(rec["adj"]) for rec in self.local_store(rank).values()))
        return out

    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx Graph (test oracle / small-graph analysis)."""
        import networkx as nx

        g = nx.Graph()
        for rank in range(self.world.nranks):
            for u, record in self.local_store(rank).items():
                g.add_node(u, meta=record["meta"])
                for v, meta in record["adj"].items():
                    g.add_edge(u, v, meta=meta)
        return g
