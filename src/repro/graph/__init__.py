"""Decorated temporal graph substrate: storage, construction, generators, I/O."""

from .degree import DegreeOrder, order_key, precedes
from .delta import AppliedDelta, DeltaBuffer
from .directed import (
    DirectedEdgeMeta,
    EdgeDirection,
    direction_between,
    original_edge_meta,
    symmetrize_directed_edges,
)
from .distributed_graph import DistributedGraph
from .dodgr import AdjEntry, DODGraph, entry_key
from .edge_list import DistributedEdgeList, canonical_pair, validate_edge_columns
from .generators import (
    GeneratedGraph,
    chung_lu_power_law,
    clustered_web_graph,
    community_host_graph,
    erdos_renyi,
    fqdn_web_graph,
    rmat,
    reddit_like_temporal_graph,
)
from .io import (
    load_edge_list,
    read_edge_file,
    read_edges_partitioned,
    read_vertex_file,
    write_edge_file,
    write_vertex_file,
)
from .metadata import (
    TriangleBatch,
    TriangleMetadata,
    edge_timestamp,
    labeled_vertex_meta,
    temporal_edge_meta,
    vertex_label,
)
from .partition import (
    BlockPartitioner,
    CyclicPartitioner,
    ExplicitPartitioner,
    HashPartitioner,
    Partitioner,
    partition_balance,
)
from .properties import (
    GraphSummary,
    build_adjacency,
    dodgr_wedge_count,
    max_dodgr_out_degree,
    serial_triangle_count,
    serial_triangle_list,
    summarize_distributed,
    summarize_edges,
)

__all__ = [
    "DistributedGraph",
    "DODGraph",
    "AdjEntry",
    "entry_key",
    "DistributedEdgeList",
    "canonical_pair",
    "DeltaBuffer",
    "AppliedDelta",
    "DegreeOrder",
    "order_key",
    "precedes",
    "EdgeDirection",
    "DirectedEdgeMeta",
    "symmetrize_directed_edges",
    "direction_between",
    "original_edge_meta",
    "GeneratedGraph",
    "rmat",
    "erdos_renyi",
    "chung_lu_power_law",
    "clustered_web_graph",
    "community_host_graph",
    "reddit_like_temporal_graph",
    "fqdn_web_graph",
    "TriangleBatch",
    "TriangleMetadata",
    "temporal_edge_meta",
    "edge_timestamp",
    "labeled_vertex_meta",
    "vertex_label",
    "Partitioner",
    "HashPartitioner",
    "CyclicPartitioner",
    "BlockPartitioner",
    "ExplicitPartitioner",
    "partition_balance",
    "GraphSummary",
    "build_adjacency",
    "serial_triangle_count",
    "serial_triangle_list",
    "max_dodgr_out_degree",
    "dodgr_wedge_count",
    "summarize_edges",
    "summarize_distributed",
    "load_edge_list",
    "validate_edge_columns",
    "read_edge_file",
    "read_edges_partitioned",
    "read_vertex_file",
    "write_edge_file",
    "write_vertex_file",
]
