"""Synthetic graph generators: R-MAT plus stand-ins for the paper's datasets.

The paper evaluates on R-MAT graphs (weak scaling) and on massive real-world
graphs (LiveJournal, Friendster, Twitter, uk-2007-05, web-cc12-hostgraph,
Web Data Commons 2012, Reddit).  None of those datasets are available
offline — and would not fit on one machine anyway — so this module provides
scaled-down generators whose *topological character* matches what the
paper's results depend on:

* :func:`rmat` — the standard recursive-matrix generator (Chakrabarti et
  al.), used exactly as in the paper's weak-scaling study.
* :func:`chung_lu_power_law` — skewed-degree social-network-like graphs with
  modest clustering (Friendster / Twitter / LiveJournal stand-ins).
* :func:`clustered_web_graph` — preferential attachment with triad closure
  and planted host-level communities, producing the very heavy hubs and high
  triangle density of web/host graphs (uk-2007-05, web-cc12-hostgraph, WDC
  2012 stand-ins).  These graphs are where the Push-Pull optimisation shines.
* :func:`reddit_like_temporal_graph` — a temporal comment multigraph between
  authors with human-timescale reply delays (the Reddit closure-time study).
* :func:`fqdn_web_graph` — a page-level web graph whose vertices carry FQDN
  strings as metadata, with planted brand / competitor / education
  communities (the Section 5.8 survey).
* :func:`erdos_renyi` — uniform random graphs for tests.

Every generator is deterministic given its seed and returns a
:class:`GeneratedGraph` holding plain edge records + vertex metadata, which
:meth:`GeneratedGraph.to_distributed` loads into a
:class:`~repro.graph.distributed_graph.DistributedGraph`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.world import World
from .distributed_graph import DistributedGraph
from .metadata import temporal_edge_meta
from .partition import Partitioner

__all__ = [
    "GeneratedGraph",
    "rmat",
    "erdos_renyi",
    "chung_lu_power_law",
    "clustered_web_graph",
    "community_host_graph",
    "reddit_like_temporal_graph",
    "fqdn_web_graph",
    "generator_rng",
]


def generator_rng(
    seed: int, rng: Optional[np.random.Generator] = None
) -> np.random.Generator:
    """The single source of randomness for every generator in this module.

    All generators draw every sample from one
    :class:`numpy.random.Generator` (PCG64 — bit-reproducible across runs
    and platforms) seeded here; passing ``rng`` explicitly lets callers
    compose several generators off one shared stream.  No generator touches
    :mod:`random`, ``numpy.random``'s legacy global state, or hash-seeded
    iteration, so output for a given seed is pinned — see
    ``tests/graph/test_generator_determinism.py`` for the frozen digests.
    """
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


class GeneratedGraph:
    """Output of a generator: undirected edge records plus vertex metadata.

    Two storage shapes coexist.  List-shaped generators pass ``edges`` (a
    list of ``(u, v, meta)`` tuples).  Array-native generators (R-MAT,
    Erdős–Rényi, Chung-Lu) pass ``edge_columns`` — a pair of parallel int64
    endpoint arrays plus one shared ``edge_meta`` value — and never
    materialize per-edge tuples unless a consumer reads :attr:`edges`, which
    synthesizes (and caches) the exact tuple list the legacy representation
    carried.  :meth:`to_distributed` feeds columns straight into
    :meth:`~repro.graph.distributed_graph.DistributedGraph.from_columns`,
    keeping the ingest path array-shaped end to end.
    """

    def __init__(
        self,
        name: str,
        edges: Optional[List[Tuple[Hashable, Hashable, Any]]] = None,
        vertex_meta: Optional[Dict[Hashable, Any]] = None,
        params: Optional[Dict[str, Any]] = None,
        edge_columns: Optional[Tuple[Any, Any]] = None,
        edge_meta: Any = None,
    ) -> None:
        if (edges is None) == (edge_columns is None):
            raise ValueError("provide exactly one of edges / edge_columns")
        self.name = name
        self.vertex_meta: Dict[Hashable, Any] = vertex_meta if vertex_meta is not None else {}
        #: free-form provenance (generator parameters), recorded for reports
        self.params: Dict[str, Any] = params if params is not None else {}
        self._edges = edges
        self._columns = edge_columns
        self._edge_meta = edge_meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeneratedGraph({self.name!r}, |E|={self.num_edges()})"

    @property
    def edges(self) -> List[Tuple[Hashable, Hashable, Any]]:
        """Edge records as tuples (materialized lazily for columnar graphs).

        Treat the returned list as **read-only**: for columnar graphs it is
        a cached projection of the endpoint arrays, and ``num_edges()`` /
        ``to_distributed()`` read the arrays, not this list — appending to
        it would silently desynchronise the two views.  Build a new
        :class:`GeneratedGraph` to derive a modified graph (see
        ``repro.bench.datasets._simplified_reddit`` for the idiom).
        """
        if self._edges is None:
            us, vs = self._columns
            meta = self._edge_meta
            self._edges = [
                (u, v, meta) for u, v in zip(us.tolist(), vs.tolist())
            ]
        return self._edges

    def edge_columns(self) -> Optional[Tuple[Any, Any]]:
        """The endpoint arrays when this graph is columnar, else None."""
        return self._columns

    def num_edges(self) -> int:
        if self._columns is not None:
            return len(self._columns[0])
        return len(self.edges)

    def num_vertices(self) -> int:
        if self._columns is not None:
            us, vs = self._columns
            seen = set(np.unique(np.concatenate([us, vs])).tolist())
        else:
            seen = set()
            for u, v, _ in self.edges:
                seen.add(u)
                seen.add(v)
        seen.update(self.vertex_meta.keys())
        return len(seen)

    def to_distributed(
        self,
        world: World,
        partitioner: Optional[Partitioner] = None,
        default_vertex_meta: Any = None,
        name: Optional[str] = None,
    ) -> DistributedGraph:
        """Bulk-load into a distributed graph on ``world``."""
        if self._columns is not None:
            us, vs = self._columns
            return DistributedGraph.from_columns(
                world,
                us,
                vs,
                edge_meta=self._edge_meta,
                vertex_meta=self.vertex_meta,
                partitioner=partitioner,
                default_vertex_meta=default_vertex_meta,
                name=name or self.name,
            )
        return DistributedGraph.from_edges(
            world,
            self.edges,
            vertex_meta=self.vertex_meta,
            partitioner=partitioner,
            default_vertex_meta=default_vertex_meta,
            name=name or self.name,
        )

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        for u, v, meta in self.edges:
            if u != v:
                g.add_edge(u, v, meta=meta)
        for vertex, meta in self.vertex_meta.items():
            if vertex in g:
                g.nodes[vertex]["meta"] = meta
        return g


# ---------------------------------------------------------------------------
# R-MAT (weak scaling workload)
# ---------------------------------------------------------------------------


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    edge_meta: Any = True,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Parameters follow the Graph500 convention: ``edge_factor`` undirected
    edges per vertex are sampled (before removing duplicates and self loops),
    with recursive quadrant probabilities (a, b, c, d = 1 - a - b - c).  The
    paper affixes dummy boolean metadata to every edge for the triangle
    counting runs; ``edge_meta`` reproduces that default.  The result is
    columnar: endpoint arrays, no per-edge tuples.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("R-MAT probabilities must sum to <= 1")
    num_vertices = 1 << scale
    num_samples = num_vertices * edge_factor
    rng = generator_rng(seed, rng)

    rows = np.zeros(num_samples, dtype=np.int64)
    cols = np.zeros(num_samples, dtype=np.int64)
    # Probability that a sample falls in the top half (row bit 0) and, given
    # the row half, the probability it falls in the left half (col bit 0).
    p_row_top = a + b
    for bit in range(scale):
        row_top = rng.random(num_samples) < p_row_top
        p_col_left = np.where(row_top, a / (a + b), c / (c + d) if (c + d) > 0 else 0.5)
        col_left = rng.random(num_samples) < p_col_left
        rows |= (~row_top).astype(np.int64) << bit
        cols |= (~col_left).astype(np.int64) << bit

    mask = rows != cols
    rows, cols = rows[mask], cols[mask]
    lo = np.minimum(rows, cols)
    hi = np.maximum(rows, cols)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    return GeneratedGraph(
        name=name or f"rmat_scale{scale}",
        edge_columns=(np.ascontiguousarray(pairs[:, 0]), np.ascontiguousarray(pairs[:, 1])),
        edge_meta=edge_meta,
        params={"scale": scale, "edge_factor": edge_factor, "a": a, "b": b, "c": c, "seed": seed},
    )


# ---------------------------------------------------------------------------
# Uniform random graphs (tests)
# ---------------------------------------------------------------------------


def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    seed: int = 0,
    edge_meta: Any = True,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """G(n, p) random graph (vectorised sampling of the upper triangle)."""
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = generator_rng(seed, rng)
    us = np.empty(0, dtype=np.int64)
    vs = np.empty(0, dtype=np.int64)
    if num_vertices >= 2 and edge_probability > 0.0:
        iu, iv = np.triu_indices(num_vertices, k=1)
        mask = rng.random(iu.shape[0]) < edge_probability
        us = iu[mask].astype(np.int64)
        vs = iv[mask].astype(np.int64)
    return GeneratedGraph(
        name=name or f"er_{num_vertices}",
        edge_columns=(us, vs),
        edge_meta=edge_meta,
        params={"n": num_vertices, "p": edge_probability, "seed": seed},
    )


# ---------------------------------------------------------------------------
# Chung-Lu power-law graphs (social-network stand-ins)
# ---------------------------------------------------------------------------


def chung_lu_power_law(
    num_vertices: int,
    average_degree: float = 12.0,
    exponent: float = 2.4,
    max_degree: Optional[int] = None,
    seed: int = 0,
    edge_meta: Any = True,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """Chung-Lu graph with power-law expected degrees.

    Produces the heavy-tailed degree distributions of large social networks
    (Friendster, Twitter, LiveJournal) with comparatively low clustering —
    the regime where the paper observes Push-Pull gaining little or nothing
    over Push-Only.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = generator_rng(seed, rng)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    weights *= (average_degree * num_vertices / 2.0) / weights.sum()
    if max_degree is not None:
        weights = np.minimum(weights, max_degree)
    total_weight = weights.sum()

    # Sample edges proportionally to w_u * w_v via two independent
    # weight-proportional endpoint draws (standard fast Chung-Lu sampling).
    num_samples = int(round(total_weight))
    probabilities = weights / total_weight
    us = rng.choice(num_vertices, size=num_samples, p=probabilities)
    vs = rng.choice(num_vertices, size=num_samples, p=probabilities)
    mask = us != vs
    us, vs = us[mask], vs[mask]
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    # Shuffle vertex labels so ids carry no degree information (the paper's
    # datasets have arbitrary ids); keeps partitioners honest.
    perm = rng.permutation(num_vertices)
    return GeneratedGraph(
        name=name or f"chung_lu_{num_vertices}",
        edge_columns=(
            perm[pairs[:, 0]].astype(np.int64),
            perm[pairs[:, 1]].astype(np.int64),
        ),
        edge_meta=edge_meta,
        params={
            "n": num_vertices,
            "average_degree": average_degree,
            "exponent": exponent,
            "seed": seed,
        },
    )


# ---------------------------------------------------------------------------
# Clustered web-like graphs (uk-2007 / hostgraph / WDC stand-ins)
# ---------------------------------------------------------------------------


def clustered_web_graph(
    num_vertices: int,
    attachment_edges: int = 6,
    triad_probability: float = 0.85,
    num_hubs: int = 8,
    hub_fanout: float = 0.05,
    seed: int = 0,
    edge_meta: Any = True,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """Preferential attachment with triad closure plus planted super-hubs.

    Web/host graphs differ from social graphs in two ways that matter for
    TriPoll: triangle density is far higher (every site's pages interlink)
    and a handful of hosts have extreme degree (d_max in the millions for
    web-cc12).  This generator reproduces both: a Holme-Kim-style process
    gives power-law degrees with high clustering, and ``num_hubs`` designated
    vertices additionally attach to a ``hub_fanout`` fraction of all
    vertices.  The resulting adjacency overlap between neighbours of popular
    targets is what makes pulling adjacency lists so profitable (Table 4's
    web-cc12 rows).
    """
    if num_vertices < attachment_edges + 1:
        raise ValueError("num_vertices must exceed attachment_edges")
    rng = generator_rng(seed, rng)
    edges_set: set = set()
    adjacency: Dict[int, List[int]] = {}
    # Target array for preferential attachment: every endpoint of every edge.
    attachment_targets: List[int] = []

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in edges_set:
            return False
        edges_set.add(key)
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
        attachment_targets.append(u)
        attachment_targets.append(v)
        return True

    # Seed clique keeps early triangle density high.
    seed_size = attachment_edges + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            add_edge(u, v)

    for new_vertex in range(seed_size, num_vertices):
        first_target = None
        for _ in range(attachment_edges):
            if (
                first_target is not None
                and rng.random() < triad_probability
            ):
                # Triad closure: connect to a random neighbour of the
                # previous target, closing a triangle.
                neighbours = adjacency.get(first_target, ())
                if neighbours:
                    candidate = int(neighbours[int(rng.integers(len(neighbours)))])
                    if add_edge(new_vertex, candidate):
                        continue
            # Preferential attachment step.
            target = int(attachment_targets[int(rng.integers(len(attachment_targets)))])
            if add_edge(new_vertex, target):
                first_target = target

    # Planted super-hubs: old, popular hosts linked from everywhere.
    hub_ids = rng.choice(num_vertices, size=min(num_hubs, num_vertices), replace=False)
    fanout = max(1, int(hub_fanout * num_vertices))
    for hub in hub_ids:
        targets = rng.choice(num_vertices, size=fanout, replace=False)
        for target in targets:
            add_edge(int(hub), int(target))

    edges = [(u, v, edge_meta) for (u, v) in sorted(edges_set)]
    return GeneratedGraph(
        name=name or f"web_{num_vertices}",
        edges=edges,
        params={
            "n": num_vertices,
            "attachment_edges": attachment_edges,
            "triad_probability": triad_probability,
            "num_hubs": num_hubs,
            "hub_fanout": hub_fanout,
            "seed": seed,
        },
    )


# ---------------------------------------------------------------------------
# Host graphs: dense host-level communities (web-cc12-hostgraph stand-in)
# ---------------------------------------------------------------------------


def community_host_graph(
    num_vertices: int,
    community_size: int = 150,
    intra_probability: float = 0.35,
    cross_links_per_vertex: float = 2.0,
    num_hubs: int = 6,
    hub_fanout: float = 0.08,
    seed: int = 0,
    edge_meta: Any = True,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """Union of dense host communities plus cross links and super-hubs.

    Host-level web graphs (web-cc12-hostgraph, and the Web Data Commons page
    graph at host granularity) consist of tightly interlinked groups — all
    the hosts of one organisation / country / platform reference each other —
    plus a long tail of cross-community links and a few hosts referenced from
    everywhere.  The dense communities are what give the Push-Pull
    optimisation its order-of-magnitude communication reduction in Table 4:
    many pivots colocated on one rank all target the same popular vertices,
    so pulling one adjacency list replaces thousands of pushed suffixes.

    ``intra_probability`` controls how dense each community is;
    ``community_size`` controls how many vertices share each dense block.
    """
    if num_vertices < community_size:
        raise ValueError("num_vertices must be at least community_size")
    rng = generator_rng(seed, rng)
    edges_set: set = set()

    def add_edge(u: int, v: int) -> None:
        if u != v:
            edges_set.add((u, v) if u < v else (v, u))

    # Dense intra-community blocks (vectorised Bernoulli sampling per block).
    num_communities = (num_vertices + community_size - 1) // community_size
    membership = np.repeat(np.arange(num_communities), community_size)[:num_vertices]
    rng.shuffle(membership)
    for community in range(num_communities):
        members = np.where(membership == community)[0]
        count = len(members)
        if count < 2:
            continue
        iu, iv = np.triu_indices(count, k=1)
        mask = rng.random(iu.shape[0]) < intra_probability
        for a, b in zip(iu[mask], iv[mask]):
            add_edge(int(members[a]), int(members[b]))

    # Cross-community links with a preferential flavour (popular targets).
    num_cross = int(cross_links_per_vertex * num_vertices)
    popularity = rng.zipf(2.0, size=num_cross) % num_vertices
    sources = rng.integers(0, num_vertices, size=num_cross)
    for u, v in zip(sources, popularity):
        add_edge(int(u), int(v))

    # Super-hubs referenced from a large fraction of all vertices.
    hub_ids = rng.choice(num_vertices, size=min(num_hubs, num_vertices), replace=False)
    fanout = max(1, int(hub_fanout * num_vertices))
    for hub in hub_ids:
        targets = rng.choice(num_vertices, size=fanout, replace=False)
        for target in targets:
            add_edge(int(hub), int(target))

    edges = [(u, v, edge_meta) for (u, v) in sorted(edges_set)]
    return GeneratedGraph(
        name=name or f"hostgraph_{num_vertices}",
        edges=edges,
        params={
            "n": num_vertices,
            "community_size": community_size,
            "intra_probability": intra_probability,
            "cross_links_per_vertex": cross_links_per_vertex,
            "num_hubs": num_hubs,
            "hub_fanout": hub_fanout,
            "seed": seed,
        },
    )


# ---------------------------------------------------------------------------
# Reddit-like temporal comment graph
# ---------------------------------------------------------------------------


def reddit_like_temporal_graph(
    num_authors: int,
    num_comments: int,
    start_time: float = 0.0,
    horizon_seconds: float = 3.0 * 365 * 24 * 3600,
    reply_halflife_seconds: float = 6 * 3600,
    community_count: int = 24,
    seed: int = 0,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """A temporal multigraph of comments between authors.

    Mirrors the construction of Section 5.2/5.7: authors are vertices;
    each comment between two authors is an undirected edge carrying a
    timestamp.  Authors belong to interest communities (subreddits); reply
    probability is heavily biased inside a community and towards active
    authors, and reply delays follow a heavy-tailed (log-normal-like)
    distribution on human time scales — seconds for bots, hours-to-days for
    people — so triangle closure-time distributions show the paper's shape
    (wedges close quickly, triangles take much longer on average).

    The returned multigraph generally contains parallel edges; the caller is
    expected to simplify it keeping the chronologically-first edge, exactly
    as the paper does (use ``DistributedEdgeList.simplify("earliest")`` or
    :meth:`repro.bench.datasets` helpers).
    """
    if num_authors < 3:
        raise ValueError("need at least 3 authors")
    rng = generator_rng(seed, rng)
    communities = rng.integers(0, community_count, size=num_authors)
    # Author activity follows a power law: a few prolific posters.
    activity = (np.arange(1, num_authors + 1, dtype=np.float64)) ** -0.8
    rng.shuffle(activity)
    activity /= activity.sum()

    # Comment times arrive over the horizon with mild growth over time.
    base_times = np.sort(rng.random(num_comments) ** 0.7) * horizon_seconds + start_time

    authors = rng.choice(num_authors, size=num_comments, p=activity)
    # Choose reply targets: mostly same community, weighted by activity.
    partners = np.empty(num_comments, dtype=np.int64)
    community_members: Dict[int, np.ndarray] = {
        c: np.where(communities == c)[0] for c in range(community_count)
    }
    community_weights: Dict[int, np.ndarray] = {}
    for c, members in community_members.items():
        if len(members) == 0:
            continue
        w = activity[members]
        community_weights[c] = w / w.sum()
    for i in range(num_comments):
        author = authors[i]
        if rng.random() < 0.8:
            members = community_members[int(communities[author])]
            if len(members) > 1:
                partners[i] = int(rng.choice(members, p=community_weights[int(communities[author])]))
            else:
                partners[i] = int(rng.choice(num_authors, p=activity))
        else:
            partners[i] = int(rng.choice(num_authors, p=activity))

    # Reply delay: mixture of fast (bot-like) and human-timescale delays.
    is_fast = rng.random(num_comments) < 0.05
    human_delay = rng.lognormal(mean=math.log(reply_halflife_seconds), sigma=1.6, size=num_comments)
    bot_delay = rng.lognormal(mean=math.log(30.0), sigma=1.0, size=num_comments)
    delays = np.where(is_fast, bot_delay, human_delay)
    timestamps = base_times + delays

    edges: List[Tuple[Hashable, Hashable, Any]] = []
    for i in range(num_comments):
        u = int(authors[i])
        v = int(partners[i])
        if u == v:
            continue
        edges.append((u, v, temporal_edge_meta(float(timestamps[i]))))

    vertex_meta = {author: int(communities[author]) for author in range(num_authors)}
    return GeneratedGraph(
        name=name or f"reddit_like_{num_authors}",
        edges=edges,
        vertex_meta=vertex_meta,
        params={
            "num_authors": num_authors,
            "num_comments": num_comments,
            "horizon_seconds": horizon_seconds,
            "reply_halflife_seconds": reply_halflife_seconds,
            "community_count": community_count,
            "seed": seed,
        },
    )


# ---------------------------------------------------------------------------
# FQDN-decorated web graph (Section 5.8 stand-in)
# ---------------------------------------------------------------------------

#: Domain families planted in the FQDN generator.  The anchor brand and its
#: sister domains reproduce the "amazon.com / amazon.co.uk / audible.com"
#: rows of Fig. 8; the competitor reproduces "abebooks.com"; the education
#: community reproduces the universities-and-libraries cluster.
_ANCHOR_BRAND = "anchor-shop.com"
_BRAND_SISTERS = [
    "anchor-shop.co.uk",
    "anchor-shop.ca",
    "anchor-audio.com",
    "anchor-cloud.com",
]
_COMPETITOR = "rival-books.com"
_EDU_TEMPLATE = "university-{:02d}.edu"
_LIB_TEMPLATE = "library-{:02d}.org"
_GENERIC_TEMPLATE = "site-{:04d}.net"


def fqdn_web_graph(
    num_pages: int = 4000,
    num_generic_domains: int = 120,
    num_edu_domains: int = 20,
    pages_per_brand: int = 60,
    seed: int = 0,
    name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> GeneratedGraph:
    """A page-level web graph whose vertex metadata is the page's FQDN string.

    Structure planted to reproduce the qualitative findings of Section 5.8:

    * the anchor brand's pages are linked from everywhere (dense rows for the
      sister brand domains in the anchor-domain triangle slice),
    * generic commerce sites that link to an anchor product page usually also
      link to the competitor's equivalent page,
    * an education/library community exists whose members interlink heavily
      and include the competitor (booksellers inside the community).
    """
    rng = generator_rng(seed, rng)

    domains: List[str] = [_ANCHOR_BRAND] + _BRAND_SISTERS + [_COMPETITOR]
    edu_domains = [_EDU_TEMPLATE.format(i) for i in range(num_edu_domains // 2)] + [
        _LIB_TEMPLATE.format(i) for i in range(num_edu_domains - num_edu_domains // 2)
    ]
    generic_domains = [_GENERIC_TEMPLATE.format(i) for i in range(num_generic_domains)]
    domains += edu_domains + generic_domains

    # Assign pages to domains: brand domains get a fixed page budget, the
    # rest of the pages are spread over edu + generic domains with a skew.
    vertex_meta: Dict[int, str] = {}
    pages_by_domain: Dict[str, List[int]] = {domain: [] for domain in domains}
    next_page = 0
    brand_domains = [_ANCHOR_BRAND] + _BRAND_SISTERS + [_COMPETITOR]
    for domain in brand_domains:
        for _ in range(pages_per_brand):
            vertex_meta[next_page] = domain
            pages_by_domain[domain].append(next_page)
            next_page += 1
    other_domains = edu_domains + generic_domains
    weights = np.array([1.0 / (i + 1) ** 0.5 for i in range(len(other_domains))])
    weights /= weights.sum()
    while next_page < num_pages:
        domain = other_domains[int(rng.choice(len(other_domains), p=weights))]
        vertex_meta[next_page] = domain
        pages_by_domain[domain].append(next_page)
        next_page += 1

    edges_set: set = set()

    def add_edge(u: int, v: int) -> None:
        if u != v:
            edges_set.add((u, v) if u < v else (v, u))

    # 1. Intra-domain link structure (site navigation): each domain's pages
    #    form a dense-ish ring + random chords.
    for domain, pages in pages_by_domain.items():
        pages_arr = pages
        count = len(pages_arr)
        if count < 2:
            continue
        for i in range(count):
            add_edge(pages_arr[i], pages_arr[(i + 1) % count])
            add_edge(pages_arr[i], pages_arr[(i + 2) % count])
        extra = count
        for _ in range(extra):
            u, v = rng.integers(0, count, size=2)
            add_edge(pages_arr[int(u)], pages_arr[int(v)])

    all_pages = np.arange(num_pages)
    anchor_pages = pages_by_domain[_ANCHOR_BRAND]
    competitor_pages = pages_by_domain[_COMPETITOR]

    # 2. Everyone links to the anchor brand; sister brands co-link with it.
    for page in range(num_pages):
        if vertex_meta[page] in brand_domains:
            continue
        if rng.random() < 0.35:
            add_edge(page, int(rng.choice(anchor_pages)))
            # Pages linking to the anchor often also link to the competitor
            # (same product at the rival retailer) and to a sister brand.
            if rng.random() < 0.5:
                add_edge(page, int(rng.choice(competitor_pages)))
            if rng.random() < 0.4:
                sister = _BRAND_SISTERS[int(rng.integers(len(_BRAND_SISTERS)))]
                add_edge(page, int(rng.choice(pages_by_domain[sister])))
    for sister in _BRAND_SISTERS:
        for page in pages_by_domain[sister]:
            for _ in range(2):
                add_edge(page, int(rng.choice(anchor_pages)))
    # The competitor's product pages cross-reference the anchor's equivalent
    # pages (price comparison / same-product listings), which is what turns
    # "page links to both retailers" wedges into triangles.
    for page in competitor_pages:
        for _ in range(2):
            add_edge(page, int(rng.choice(anchor_pages)))

    # 3. Education/library community: members interlink heavily and cite the
    #    competitor bookseller frequently, the anchor occasionally.
    edu_pages = [p for d in edu_domains for p in pages_by_domain[d]]
    if edu_pages:
        edu_arr = np.array(edu_pages)
        for page in edu_pages:
            for _ in range(3):
                add_edge(page, int(rng.choice(edu_arr)))
            if rng.random() < 0.45:
                add_edge(page, int(rng.choice(competitor_pages)))
            if rng.random() < 0.15:
                add_edge(page, int(rng.choice(anchor_pages)))

    # 4. Background cross-links between random pages.
    background = num_pages * 2
    for _ in range(background):
        u, v = rng.choice(all_pages, size=2, replace=False)
        add_edge(int(u), int(v))

    edges = [(u, v, True) for (u, v) in sorted(edges_set)]
    return GeneratedGraph(
        name=name or f"fqdn_web_{num_pages}",
        edges=edges,
        vertex_meta={page: domain for page, domain in vertex_meta.items()},
        params={
            "num_pages": num_pages,
            "num_generic_domains": num_generic_domains,
            "num_edu_domains": num_edu_domains,
            "pages_per_brand": pages_per_brand,
            "seed": seed,
            "anchor_domain": _ANCHOR_BRAND,
            "competitor_domain": _COMPETITOR,
            "sister_domains": list(_BRAND_SISTERS),
        },
    )
