"""Degree-ordered directed graph (DODGr) with metadata-augmented adjacency.

Section 3/4.2: the undirected input graph G is rewritten into the directed
graph G+ where every undirected edge (u, v) becomes the single directed edge
u -> v with ``u <+ v`` in the degree ordering.  TriPoll stores G+ in a
distributed map keyed by vertex; the value for ``u`` is the pair
``(meta(u), Adj^m_+(u))`` where

    Adj^m_+(u) = { (v, meta(u, v), meta(v)) : v in Adj+(u) }

ordered by degree.  Storing the *target's* metadata along the edge raises
vertex-metadata storage from O(|V|) to O(|E|) but lets a triangle Δpqr be
surveyed without ever visiting r, the highest-degree vertex (the closing
edge (q, r) — and meta(r) — is found in Adj^m_+(q)).

Adjacency entries in this reproduction are tuples

    (v, d(v), meta(u, v), meta(v))

The target degree ``d(v)`` is kept because the ``<+`` comparison (and hence
the merge-path intersection order) needs it; this mirrors the "small constant
amount of additional memory per edge" the paper mentions.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..runtime.world import RankContext, World
from .degree import order_key
from .distributed_graph import DistributedGraph
from .partition import Partitioner

__all__ = ["DODGraph", "AdjEntry", "entry_key"]

#: An Adj^m_+ entry: (target vertex, target degree, edge metadata, target vertex metadata)
AdjEntry = Tuple[Hashable, int, Any, Any]


def entry_key(entry: AdjEntry) -> Tuple[int, int, str]:
    """Sort key ordering adjacency entries by the ``<+`` relation of their target."""
    return order_key(entry[0], entry[1])


class DODGraph:
    """The degree-ordered directed graph G+ with metadata-augmented adjacency."""

    _counter = 0

    def __init__(
        self,
        world: World,
        partitioner: Partitioner,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.partitioner = partitioner
        if name is None:
            name = f"dodgr_{DODGraph._counter}"
            DODGraph._counter += 1
        self.name = world.unique_name(name)
        for ctx in world.ranks:
            ctx.local_state.setdefault(self._slot, {})
        self._h_offer_edge = world.register_handler(
            self._handle_offer_edge, f"{self.name}.offer_edge"
        )

    # ------------------------------------------------------------------
    @property
    def _slot(self) -> str:
        return f"dodgr:{self.name}"

    def owner(self, vertex: Hashable) -> int:
        return self.partitioner.owner(vertex)

    def local_store(self, rank_or_ctx: int | RankContext) -> Dict[Hashable, Dict[str, Any]]:
        ctx = (
            rank_or_ctx
            if isinstance(rank_or_ctx, RankContext)
            else self.world.rank(rank_or_ctx)
        )
        return ctx.local_state[self._slot]

    def _vertex_record(
        self, store: Dict[Hashable, Dict[str, Any]], vertex: Hashable
    ) -> Dict[str, Any]:
        record = store.get(vertex)
        if record is None:
            record = {"meta": None, "degree": 0, "adj": []}
            store[vertex] = record
        return record

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _handle_offer_edge(
        self,
        ctx: RankContext,
        v: Hashable,
        u: Hashable,
        d_u: int,
        meta_u: Any,
        edge_meta: Any,
    ) -> None:
        """Executed on the owner of ``v`` for every half edge (u -> v) of G.

        The owner knows d(v) and meta(v) locally; if ``v <+ u`` the directed
        edge (v, u) belongs to Adj^m_+(v) and all of its metadata is at hand.
        """
        store = self.local_store(ctx)
        record = store.get(v)
        if record is None:
            # v had no presence yet (can only happen for isolated metadata
            # updates); materialise it so degree comparisons stay defined.
            record = self._vertex_record(store, v)
        d_v = record["degree"]
        if order_key(v, d_v) < order_key(u, d_u):
            record["adj"].append((u, d_u, edge_meta, meta_u))
            ctx.add_compute(1)

    @classmethod
    def build(
        cls,
        graph: DistributedGraph,
        mode: str = "bulk",
        name: Optional[str] = None,
        phase_name: Optional[str] = None,
    ) -> "DODGraph":
        """Construct G+ from an undirected :class:`DistributedGraph`.

        Parameters
        ----------
        graph:
            The decorated undirected input graph.
        mode:
            ``"bulk"`` constructs the structure directly on the driver (no
            messages — used when construction is not the phase being
            measured); ``"async"`` routes every half edge through the
            simulated runtime exactly as the MPI implementation would,
            charging the traffic to the construction phase.
        """
        if mode not in ("bulk", "async"):
            raise ValueError(f"unknown build mode {mode!r}")
        dodgr = cls(graph.world, graph.partitioner, name=name)
        world = graph.world

        # Seed local records with each vertex's metadata and full degree so
        # the <+ comparison can be evaluated locally on the owner.
        for rank in range(world.nranks):
            store = dodgr.local_store(rank)
            for u, record in graph.local_vertices(rank):
                store[u] = {"meta": record["meta"], "degree": len(record["adj"]), "adj": []}

        if mode == "async":
            world.begin_phase(phase_name or f"{dodgr.name}.build")
            for ctx in world.ranks:
                graph_store = graph.local_store(ctx)
                for u, record in graph_store.items():
                    d_u = len(record["adj"])
                    meta_u = record["meta"]
                    for v, edge_meta in record["adj"].items():
                        ctx.async_call(
                            dodgr.owner(v), dodgr._h_offer_edge, v, u, d_u, meta_u, edge_meta
                        )
            world.barrier()
        else:
            for rank in range(world.nranks):
                for u, record in graph.local_vertices(rank):
                    d_u = len(record["adj"])
                    meta_u = record["meta"]
                    key_u = order_key(u, d_u)
                    for v, edge_meta in record["adj"].items():
                        owner_v = dodgr.owner(v)
                        target_record = dodgr.local_store(owner_v)[v]
                        d_v = target_record["degree"]
                        if order_key(v, d_v) < key_u:
                            target_record["adj"].append((u, d_u, edge_meta, meta_u))

        dodgr.sort_adjacency()
        return dodgr

    def sort_adjacency(self) -> None:
        """Sort every Adj^m_+ list by the ``<+`` order of the target vertex."""
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                record["adj"].sort(key=entry_key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        return sum(len(self.local_store(r)) for r in range(self.world.nranks))

    def num_directed_edges(self) -> int:
        total = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                total += len(record["adj"])
        return total

    def out_degree(self, vertex: Hashable) -> int:
        record = self.local_store(self.owner(vertex)).get(vertex)
        return len(record["adj"]) if record is not None else 0

    def degree(self, vertex: Hashable) -> int:
        record = self.local_store(self.owner(vertex)).get(vertex)
        return record["degree"] if record is not None else 0

    def vertex_meta(self, vertex: Hashable) -> Any:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            raise KeyError(f"vertex {vertex!r} not in DODGr")
        return record["meta"]

    def adjacency(self, vertex: Hashable) -> List[AdjEntry]:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            return []
        return list(record["adj"])

    def max_out_degree(self) -> int:
        best = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                if len(record["adj"]) > best:
                    best = len(record["adj"])
        return best

    def wedge_count(self) -> int:
        """|W+|: the number of wedge checks the push algorithm will generate.

        Each pivot p contributes C(d+(p), 2) candidate checks (Section 4.3).
        """
        total = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                d_plus = len(record["adj"])
                total += d_plus * (d_plus - 1) // 2
        return total

    def local_vertices(self, rank: int) -> Iterator[Tuple[Hashable, Dict[str, Any]]]:
        yield from self.local_store(rank).items()

    def vertices(self) -> Iterator[Hashable]:
        for rank in range(self.world.nranks):
            yield from self.local_store(rank).keys()

    def directed_edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        for rank in range(self.world.nranks):
            for u, record in self.local_store(rank).items():
                for entry in record["adj"]:
                    yield (u, entry[0])

    def rank_edge_counts(self) -> List[int]:
        out = []
        for rank in range(self.world.nranks):
            out.append(sum(len(rec["adj"]) for rec in self.local_store(rank).values()))
        return out

    # ------------------------------------------------------------------
    def visit(self, ctx: RankContext, vertex: Hashable, func, *args: Any) -> None:
        """Send an RPC to the owner of ``vertex`` (DODGr.visit of Section 4.2).

        ``func(ctx, vertex, *args)`` executes on the owning rank where the
        vertex's record (metadata + Adj^m_+) is available via
        :meth:`local_store`.
        """
        ctx.async_call(self.owner(vertex), func, vertex, *args)
