"""Degree-ordered directed graph (DODGr) with metadata-augmented adjacency.

Section 3/4.2: the undirected input graph G is rewritten into the directed
graph G+ where every undirected edge (u, v) becomes the single directed edge
u -> v with ``u <+ v`` in the degree ordering.  TriPoll stores G+ in a
distributed map keyed by vertex; the value for ``u`` is the pair
``(meta(u), Adj^m_+(u))`` where

    Adj^m_+(u) = { (v, meta(u, v), meta(v)) : v in Adj+(u) }

ordered by degree.  Storing the *target's* metadata along the edge raises
vertex-metadata storage from O(|V|) to O(|E|) but lets a triangle Δpqr be
surveyed without ever visiting r, the highest-degree vertex (the closing
edge (q, r) — and meta(r) — is found in Adj^m_+(q)).

Adjacency entries in this reproduction are tuples

    (v, d(v), meta(u, v), meta(v))

The target degree ``d(v)`` is kept because the ``<+`` comparison (and hence
the merge-path intersection order) needs it; this mirrors the "small constant
amount of additional memory per edge" the paper mentions.

Two views of the same store coexist:

* the *record* view behind :meth:`DODGraph.local_store` — one dict per rank
  mapping each vertex to ``{"meta", "degree", "adj"}``, mutable during
  construction; this is what the legacy per-wedge survey walks, and
* a *CSR* view behind :meth:`DODGraph.csr` — per-rank
  :class:`CSRAdjacency` snapshots flattening every adjacency list into
  contiguous arrays (neighbour order-ids, owners, serialized-size prefix
  sums, metadata indices), built lazily once construction is finished.  The
  batched survey engine iterates and intersects over these arrays.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..runtime.serialization import int_size_array, serialized_size
from ..runtime.world import RankContext, World
from .columnar import group_slices
from .degree import order_key, order_positions
from .distributed_graph import DistributedGraph
from .ooc import StorageConfig, release_csr_segments, resolve_storage, spill_csr
from .partition import Partitioner

try:  # NumPy backs the CSR arrays when available; plain lists otherwise.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = ["DODGraph", "CSRAdjacency", "AdjEntry", "entry_key"]

#: An Adj^m_+ entry: (target vertex, target degree, edge metadata, target vertex metadata)
AdjEntry = Tuple[Hashable, int, Any, Any]


def entry_key(entry: AdjEntry) -> Tuple[int, int, str]:
    """Sort key ordering adjacency entries by the ``<+`` relation of their target."""
    return order_key(entry[0], entry[1])


class CSRAdjacency:
    """Flat CSR snapshot of one rank's Adj^m_+ store (Section 4.2 layout).

    Where the record view keeps one Python list of tuples per vertex, this
    view concatenates every local adjacency into rank-contiguous arrays, the
    in-memory analogue of the packed per-rank adjacency TriPoll's C++ stores
    inside its distributed map.  Row ``i`` describes local vertex
    ``row_vertices[i]``; its entries occupy ``indptr[i]:indptr[i + 1]`` in
    every per-edge array.  Per-edge data is split into

    * ``tgt_ids`` — the target's dense rank in the global ``<+`` order
      (int64 when NumPy is available).  Rows are sorted ascending, and id
      equality is vertex equality, so batched kernels can intersect rows
      with integer comparisons only;
    * ``tgt_owner`` — precomputed owner rank of each target (partition map
      lookups hoisted out of the per-wedge hot loop);
    * ``entries`` — the original ``(v, d(v), meta(u, v), meta(v))`` tuples,
      shared with the record view, indexed by the same edge offsets (the
      "metadata-index" array: kernels match on ids, then fetch metadata by
      edge index);
    * exact serialized sizes (``cand_size_cumsum``, ``tgt_wire_sizes``,
      ``row_wire_sizes``) of the fragments a legacy per-wedge push message
      would carry, so the batched engine can account the byte-identical
      Table 4 communication volume without serializing each wedge.

    The snapshot assumes the store is finished mutating (post
    :meth:`DODGraph.sort_adjacency`); :class:`DODGraph` invalidates cached
    snapshots if construction touches the records again.
    """

    __slots__ = (
        "num_rows",
        "num_edges",
        "vertex_rows",
        "row_vertices",
        "row_meta",
        "row_degree",
        "row_wire_sizes",
        "indptr",
        "entries",
        "tgt_ids",
        "tgt_owner",
        "tgt_wire_sizes",
        "cand_size_cumsum",
        "row_order_ids",
        "_columns",
        "row_adj_cache",
        "_delta_inv_index",
        "storage",
        "segment_paths",
        "send_scratch",
    )

    def __init__(
        self,
        store: Dict[Hashable, Dict[str, Any]],
        order_ids: Dict[Hashable, int],
        owner_of: Any,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        self.num_rows = len(store)
        self.vertex_rows: Dict[Hashable, int] = {}
        self.row_vertices: List[Hashable] = []
        self.row_meta: List[Any] = []
        self.row_degree: List[int] = []
        self.row_wire_sizes: List[int] = []
        indptr: List[int] = [0]
        entries: List[AdjEntry] = []
        self.row_order_ids: List[int] = []
        for vertex, record in store.items():
            self.vertex_rows[vertex] = len(self.row_vertices)
            self.row_order_ids.append(order_ids[vertex])
            self.row_vertices.append(vertex)
            self.row_meta.append(record["meta"])
            self.row_degree.append(record["degree"])
            self.row_wire_sizes.append(
                serialized_size(vertex) + serialized_size(record["meta"])
            )
            entries.extend(record["adj"])
            indptr.append(len(entries))
        self.num_edges = len(entries)
        self.indptr = indptr
        self.entries = entries
        targets = [entry[0] for entry in entries]
        tgt_ids = [order_ids[target] for target in targets]
        all_int_targets = all(type(target) is int for target in targets)
        # Exact per-edge wire sizes: the whole candidate column at once when
        # the value types allow it, one serialized_size call per field else.
        sized = False
        if _np is not None and entries:
            sized = self._vector_entry_sizes(entries, targets, all_int_targets)
        if not sized:
            tgt_wire_sizes: List[int] = []
            cand_cumsum: List[int] = [0]
            running = 0
            for entry in entries:
                sz_target = serialized_size(entry[0])
                sz_degree = serialized_size(entry[1])
                sz_edge_meta = serialized_size(entry[2])
                # One candidate tuple (r, d(r), meta(p, r)) on the legacy
                # wire: 2 framing bytes (tuple tag + arity) plus its fields.
                running += 2 + sz_target + sz_degree + sz_edge_meta
                cand_cumsum.append(running)
                tgt_wire_sizes.append(sz_target + sz_edge_meta)
            self.tgt_wire_sizes = tgt_wire_sizes
            self.cand_size_cumsum = cand_cumsum
        # Owner ranks: one vectorized partition-map evaluation over the whole
        # target column when ids are integers, scalar lookups otherwise.
        self.tgt_owner = None
        if partitioner is not None and _np is not None and all_int_targets and entries:
            try:
                targets_arr = _np.fromiter(targets, dtype=_np.int64, count=len(targets))
            except OverflowError:  # ids beyond int64: scalar fallback
                targets_arr = None
            if targets_arr is not None:
                self.tgt_owner = partitioner.owners_array(targets_arr).tolist()
        if self.tgt_owner is None:
            self.tgt_owner = [owner_of(target) for target in targets]
        if _np is not None:
            self.tgt_ids = _np.asarray(tgt_ids, dtype=_np.int64)
        else:
            self.tgt_ids = tgt_ids
        self._columns = None
        #: slot for the core engine's cached RowAdjacency view of this CSR
        self.row_adj_cache = None
        #: slot for the incremental engine's cached inverted target index
        self._delta_inv_index = None
        #: storage mode of the column arrays ("resident" until spilled) and
        #: the tracked memmap segment files backing them when out-of-core
        self.storage = "resident"
        self.segment_paths: List[str] = []
        #: reusable disk-backed scratch for the columnar driver's staged
        #: send columns under mmap storage (see ooc.stage_send_columns)
        self.send_scratch = None

    # ------------------------------------------------------------------
    @staticmethod
    def _vector_value_sizes(values: List[Any]) -> Optional[Any]:
        """Exact serialized sizes of a homogeneous scalar column, or None.

        Handles the column shapes the generators emit — all-float, all-int
        or all-None metadata — where per-value wire sizes are computable as
        one array expression; anything mixed or structured returns None and
        the caller sizes values one by one.
        """
        first = values[0]
        if first.__class__ is float:
            if all(value.__class__ is float for value in values):
                return _np.full(len(values), 9, dtype=_np.int64)  # tag + double
            return None
        if first.__class__ is int:
            if all(value.__class__ is int for value in values):
                try:
                    column = _np.fromiter(values, dtype=_np.int64, count=len(values))
                except OverflowError:  # beyond int64: scalar fallback
                    return None
                return int_size_array(column)
            return None
        if first is None and all(value is None for value in values):
            return _np.ones(len(values), dtype=_np.int64)
        return None

    def _vector_entry_sizes(
        self, entries: List[AdjEntry], targets: List[Hashable], all_int_targets: bool
    ) -> bool:
        """Try the columnar wire-size path; True when the arrays were built.

        Bit-identical to the scalar loop (``int_size_array``/constant sizes
        replay ``serialized_size`` exactly, pinned by
        ``tests/runtime/test_serialization.py``) but sizes the whole edge
        column in a handful of array expressions — the dominant cost of a
        CSR snapshot build, which streaming surveys pay once per batch.
        """
        if not all_int_targets:
            return False
        try:
            targets_arr = _np.fromiter(targets, dtype=_np.int64, count=len(targets))
        except OverflowError:
            return False
        meta_sizes = self._vector_value_sizes([entry[2] for entry in entries])
        if meta_sizes is None:
            return False
        degrees = _np.fromiter(
            (entry[1] for entry in entries), dtype=_np.int64, count=len(entries)
        )
        sz_target = int_size_array(targets_arr)
        sz_degree = int_size_array(degrees)
        # One candidate tuple (r, d(r), meta(p, r)) on the legacy wire:
        # 2 framing bytes (tuple tag + arity) plus its fields.
        per_edge = 2 + sz_target + sz_degree + meta_sizes
        cumsum = _np.concatenate(([0], _np.cumsum(per_edge)))
        self.tgt_wire_sizes = (sz_target + meta_sizes).tolist()
        self.cand_size_cumsum = cumsum.tolist()
        return True

    # ------------------------------------------------------------------
    def columns(self) -> "SimpleNamespace":
        """NumPy views of the accounting/driver columns (lazily built, cached).

        The list attributes stay authoritative (and are what the per-wedge
        paths index); the columnar driver reads these int64 array twins —
        ``indptr``, ``tgt_owner``, ``row_wire``, ``tgt_wire``,
        ``cand_cumsum``, ``row_order_ids`` — so per-wedge size/owner math
        becomes array arithmetic.  Requires NumPy.
        """
        if self._columns is None:
            self._columns = SimpleNamespace(
                indptr=_np.asarray(self.indptr, dtype=_np.int64),
                tgt_owner=_np.asarray(self.tgt_owner, dtype=_np.int64),
                row_wire=_np.asarray(self.row_wire_sizes, dtype=_np.int64),
                tgt_wire=_np.asarray(self.tgt_wire_sizes, dtype=_np.int64),
                cand_cumsum=_np.asarray(self.cand_size_cumsum, dtype=_np.int64),
                row_order_ids=_np.asarray(self.row_order_ids, dtype=_np.int64),
            )
        return self._columns

    # ------------------------------------------------------------------
    def row_of(self, vertex: Hashable) -> Optional[int]:
        """Row index of a local vertex, or None when the rank does not own it."""
        return self.vertex_rows.get(vertex)

    def row_slice(self, row: int) -> Tuple[int, int]:
        """Edge-array extent ``[lo, hi)`` of one row."""
        return self.indptr[row], self.indptr[row + 1]

    def row_ids(self, row: int):
        """The row's target order-ids (sorted ascending)."""
        lo, hi = self.indptr[row], self.indptr[row + 1]
        return self.tgt_ids[lo:hi]

    def suffix_wire_bytes(self, qpos: int, hi: int) -> int:
        """Serialized bytes of the candidate tuples in edge range ``(qpos, hi)``."""
        return self.cand_size_cumsum[hi] - self.cand_size_cumsum[qpos + 1]


class DODGraph:
    """The degree-ordered directed graph G+ with metadata-augmented adjacency."""

    def __init__(
        self,
        world: World,
        partitioner: Partitioner,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.partitioner = partitioner
        if name is None:
            name = world.anonymous_name("dodgr")
        self.name = world.unique_name(name)
        for ctx in world.ranks:
            ctx.local_state.setdefault(self._slot, {})
        self._h_offer_edge = world.register_handler(
            self._handle_offer_edge, f"{self.name}.offer_edge"
        )
        #: lazily built derived views (cleared whenever records mutate)
        self._order_ids: Optional[Dict[Hashable, int]] = None
        self._csr: Dict[int, CSRAdjacency] = {}
        self._rows_by_order_id = None
        #: CSR storage policy; None means resident (today's default)
        self._storage: Optional[StorageConfig] = None

    # ------------------------------------------------------------------
    @property
    def _slot(self) -> str:
        return f"dodgr:{self.name}"

    def owner(self, vertex: Hashable) -> int:
        return self.partitioner.owner(vertex)

    def local_store(self, rank_or_ctx: int | RankContext) -> Dict[Hashable, Dict[str, Any]]:
        ctx = (
            rank_or_ctx
            if isinstance(rank_or_ctx, RankContext)
            else self.world.rank(rank_or_ctx)
        )
        return ctx.local_state[self._slot]

    def _vertex_record(
        self, store: Dict[Hashable, Dict[str, Any]], vertex: Hashable
    ) -> Dict[str, Any]:
        record = store.get(vertex)
        if record is None:
            record = {"meta": None, "degree": 0, "adj": []}
            store[vertex] = record
        return record

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _handle_offer_edge(
        self,
        ctx: RankContext,
        v: Hashable,
        u: Hashable,
        d_u: int,
        meta_u: Any,
        edge_meta: Any,
    ) -> None:
        """Executed on the owner of ``v`` for every half edge (u -> v) of G.

        The owner knows d(v) and meta(v) locally; if ``v <+ u`` the directed
        edge (v, u) belongs to Adj^m_+(v) and all of its metadata is at hand.
        """
        store = self.local_store(ctx)
        record = store.get(v)
        if record is None:
            # v had no presence yet (can only happen for isolated metadata
            # updates); materialise it so degree comparisons stay defined.
            record = self._vertex_record(store, v)
        d_v = record["degree"]
        if order_key(v, d_v) < order_key(u, d_u):
            record["adj"].append((u, d_u, edge_meta, meta_u))
            self._invalidate_derived()
            ctx.add_compute(1)

    @classmethod
    def build(
        cls,
        graph: DistributedGraph,
        mode: str = "bulk",
        name: Optional[str] = None,
        phase_name: Optional[str] = None,
    ) -> "DODGraph":
        """Construct G+ from an undirected :class:`DistributedGraph`.

        Parameters
        ----------
        graph:
            The decorated undirected input graph.
        mode:
            ``"bulk"`` (the default) constructs the structure directly on
            the driver with the vectorized pipeline: dense ``<+`` positions
            from one :func:`~repro.graph.degree.order_positions` argsort,
            orientation of every half edge as one array comparison, and
            per-target adjacency assembly from one ``lexsort`` — no
            per-edge ``order_key`` tuples, hash calls, or owner lookups.
            ``"bulk-legacy"`` runs the original per-half-edge Python loop
            (kept as the reference the golden-parity tests and
            ``benchmarks/bench_build_pipeline.py`` gate against; also the
            automatic fallback when NumPy is unavailable).  Both produce
            bit-identical graphs: same store insertion order, same adjacency
            tuples in the same ``<+``-sorted order, same
            :meth:`order_ids`.  ``"async"`` routes every half edge through
            the simulated runtime exactly as the MPI implementation would,
            charging the traffic to the construction phase.
        """
        if mode not in ("bulk", "bulk-legacy", "async"):
            raise ValueError(f"unknown build mode {mode!r}")
        dodgr = cls(graph.world, graph.partitioner, name=name)
        world = graph.world

        # Seed local records with each vertex's metadata and full degree so
        # the <+ comparison can be evaluated locally on the owner.  The bulk
        # pipeline collects the vertex/degree/meta columns in the same pass;
        # the other modes skip the column bookkeeping entirely.
        vectorize = mode == "bulk" and _np is not None
        vertices: List[Hashable] = []
        degrees: List[int] = []
        metas: List[Any] = []
        records: List[Dict[str, Any]] = []
        for rank in range(world.nranks):
            store = dodgr.local_store(rank)
            for u, record in graph.local_vertices(rank):
                d_u = len(record["adj"])
                rec = {"meta": record["meta"], "degree": d_u, "adj": []}
                store[u] = rec
                if vectorize:
                    vertices.append(u)
                    degrees.append(d_u)
                    metas.append(record["meta"])
                    records.append(rec)

        if mode == "async":
            world.begin_phase(phase_name or f"{dodgr.name}.build")
            for ctx in world.ranks:
                graph_store = graph.local_store(ctx)
                for u, record in graph_store.items():
                    d_u = len(record["adj"])
                    meta_u = record["meta"]
                    for v, edge_meta in record["adj"].items():
                        ctx.async_call_sized(
                            dodgr.owner(v), dodgr._h_offer_edge, v, u, d_u, meta_u, edge_meta
                        )
            world.barrier()
        elif not vectorize:
            for rank in range(world.nranks):
                for u, record in graph.local_vertices(rank):
                    d_u = len(record["adj"])
                    meta_u = record["meta"]
                    key_u = order_key(u, d_u)
                    for v, edge_meta in record["adj"].items():
                        owner_v = dodgr.owner(v)
                        target_record = dodgr.local_store(owner_v)[v]
                        d_v = target_record["degree"]
                        if order_key(v, d_v) < key_u:
                            target_record["adj"].append((u, d_u, edge_meta, meta_u))
        else:
            dodgr._build_bulk_vectorized(graph, vertices, degrees, metas, records)
            return dodgr

        dodgr.sort_adjacency()
        return dodgr

    def _build_bulk_vectorized(
        self,
        graph: DistributedGraph,
        vertices: List[Hashable],
        degrees: List[int],
        metas: List[Any],
        records: List[Dict[str, Any]],
    ) -> None:
        """Array-native orientation + adjacency assembly (mode ``"bulk"``).

        Works on dense vertex indices (position in the rank-major ``vertices``
        column), so everything after the one pass that flattens the
        adjacency dicts is NumPy: the ``<+`` positions come from
        :func:`order_positions`, the keep-this-half-edge decision is a single
        ``pos[tgt] < pos[src]`` comparison, and each target's entries land in
        final sorted order from one ``lexsort`` — matching the legacy loop's
        ``sort_adjacency`` output without ever computing an ``order_key``
        per edge.
        """
        world = self.world
        index_of = {v: i for i, v in enumerate(vertices)}
        get_index = index_of.__getitem__
        src_counts: List[int] = []
        tgt_indices: List[int] = []
        edge_metas: List[Any] = []
        for rank in range(world.nranks):
            for _u, record in graph.local_vertices(rank):
                adj = record["adj"]
                src_counts.append(len(adj))
                tgt_indices.extend(map(get_index, adj.keys()))
                edge_metas.extend(adj.values())

        pos, order = order_positions(vertices, degrees)
        # Dense <+ ids double as the lazily-built order_ids cache: identical
        # by construction to what order_ids() would compute from the stores.
        order_list = order.tolist() if hasattr(order, "tolist") else order
        self._order_ids = {vertices[g]: k for k, g in enumerate(order_list)}

        if tgt_indices:
            src = _np.repeat(
                _np.arange(len(vertices), dtype=_np.int64),
                _np.asarray(src_counts, dtype=_np.int64),
            )
            tgt = _np.asarray(tgt_indices, dtype=_np.int64)
            keep = pos[tgt] < pos[src]
            kept_src = src[keep]
            kept_tgt = tgt[keep]
            kept_meta = _np.flatnonzero(keep)
            # Group by target, entries in the target's final <+ order.
            sorter = _np.lexsort((pos[kept_src], kept_tgt))
            tgt_sorted = kept_tgt[sorter]
            src_list = kept_src[sorter].tolist()
            tgt_list = tgt_sorted.tolist()
            meta_list = kept_meta[sorter].tolist()
            for start, end in group_slices(tgt_sorted):
                records[tgt_list[start]]["adj"] = [
                    (vertices[s], degrees[s], edge_metas[m], metas[s])
                    for s, m in zip(src_list[start:end], meta_list[start:end])
                ]

    def sort_adjacency(self) -> None:
        """Sort every Adj^m_+ list by the ``<+`` order of the target vertex."""
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                record["adj"].sort(key=entry_key)
        self._invalidate_derived()

    # ------------------------------------------------------------------
    # Derived flat views (batched engine backend)
    # ------------------------------------------------------------------
    def _invalidate_derived(self) -> None:
        for snapshot in self._csr.values():
            release_csr_segments(snapshot)
        self._order_ids = None
        self._csr.clear()
        self._rows_by_order_id = None

    def order_ids(self) -> Dict[Hashable, int]:
        """Dense integer ranks of every vertex in the global ``<+`` order.

        Ids are assigned by sorting all stored vertices by
        :func:`~repro.graph.degree.order_key`, so ``id(u) < id(v)`` iff
        ``u <+ v`` and id equality implies vertex identity.  This collapses
        the composite ``(degree, hash, repr)`` comparison into single-int
        comparisons that the vectorized batch kernels can use directly.
        Built lazily over the finished DODGr and cached.
        """
        if self._order_ids is None:
            keyed = [
                (order_key(vertex, record["degree"]), vertex)
                for rank in range(self.world.nranks)
                for vertex, record in self.local_store(rank).items()
            ]
            keyed.sort(key=lambda kv: kv[0])
            self._order_ids = {vertex: i for i, (_key, vertex) in enumerate(keyed)}
        return self._order_ids

    def order_count(self) -> int:
        """Number of dense ``<+`` order ids (the columnar composite-key stride)."""
        return len(self.order_ids())

    def rows_by_order_id(self):
        """Order-id → owner-local CSR row index, as one global int64 array.

        Every vertex is stored on exactly one rank, so a single array of
        length :meth:`order_count` maps any target's dense ``<+`` id to its
        row inside the *owning* rank's :class:`CSRAdjacency` — the lookup the
        columnar intersect handler does per wedge without a dict probe.
        Requires NumPy; built lazily over all ranks' CSR snapshots and
        invalidated with them.
        """
        if self._rows_by_order_id is None:
            out = _np.zeros(self.order_count(), dtype=_np.int64)
            for rank in range(self.world.nranks):
                snapshot = self.csr(rank)
                if snapshot.num_rows:
                    ids = _np.asarray(snapshot.row_order_ids, dtype=_np.int64)
                    out[ids] = _np.arange(snapshot.num_rows, dtype=_np.int64)
            self._rows_by_order_id = out
        return self._rows_by_order_id

    # ------------------------------------------------------------------
    # Storage policy (out-of-core CSR)
    # ------------------------------------------------------------------
    def configure_storage(self, storage) -> "StorageConfig":
        """Set how CSR snapshots store their column arrays.

        ``storage`` is a mode string (``"resident"``/``"mmap"``), a
        :class:`~repro.graph.ooc.StorageConfig` (for a budget/directory), or
        ``None`` to reset to resident.  Cached snapshots built under a
        different mode are dropped (their segment files unlinked) so the next
        :meth:`csr` call rebuilds them under the new policy.
        """
        if storage is None or isinstance(storage, str):
            config = StorageConfig(mode=resolve_storage(storage))
        elif isinstance(storage, StorageConfig):
            config = storage.with_mode(storage.mode)
        else:
            raise TypeError(
                f"storage must be a mode string or StorageConfig, got {storage!r}"
            )
        previous = self.storage_config()
        self._storage = config
        if previous.mode != config.mode and self._csr:
            for snapshot in self._csr.values():
                release_csr_segments(snapshot)
            self._csr.clear()
        return config

    def storage_config(self) -> "StorageConfig":
        """The active CSR storage policy (resident unless configured)."""
        return self._storage if self._storage is not None else StorageConfig()

    def chunk_candidates(self) -> Optional[int]:
        """Candidate-stream chunk length the engine drivers should honour.

        ``None`` (resident storage) means unchunked — one batch per
        destination, today's exact behaviour.  Under mmap storage this bounds
        the concatenated candidate arrays a driver or intersect handler
        materializes at once, which is what keeps the survey's transient
        working set under the configured budget while the spilled columns
        page in from disk.
        """
        return self.storage_config().resolved_chunk_candidates()

    def csr(self, rank_or_ctx: int | RankContext) -> CSRAdjacency:
        """The rank's :class:`CSRAdjacency` snapshot (lazily built, cached).

        Exposes the same per-rank store as :meth:`local_store` as contiguous
        arrays for the batched engine; invalidated automatically if the
        record view mutates (new edges offered, adjacency re-sorted).  Under
        an ``"mmap"`` storage policy (:meth:`configure_storage`) the
        snapshot's column arrays are spilled to tracked memmap segment files
        immediately after construction; :meth:`release` (and any derived-view
        invalidation) unlinks them.
        """
        rank = rank_or_ctx.rank if isinstance(rank_or_ctx, RankContext) else rank_or_ctx
        snapshot = self._csr.get(rank)
        config = self.storage_config()
        if snapshot is not None and snapshot.storage != config.mode:
            release_csr_segments(snapshot)
            self._csr.pop(rank, None)
            snapshot = None
        if snapshot is None:
            snapshot = CSRAdjacency(
                self.local_store(rank), self.order_ids(), self.owner, self.partitioner
            )
            if config.mode == "mmap":
                spill_csr(snapshot, self.order_count(), config)
            self._csr[rank] = snapshot
        return snapshot

    def release(self) -> None:
        """Free this graph's runtime footprint; the graph is unusable after.

        Streaming surveys rebuild the DODGr once per batch — without this,
        every superseded rebuild stays pinned for the world's lifetime by
        its construction handler and per-rank store slots.  Releasing
        tombstones the handler (id allocation, and therefore every accounted
        message size, is unchanged — see
        :meth:`~repro.runtime.rpc.RpcRegistry.release`) and drops the rank
        stores and derived views.
        """
        self.world.registry.release(self._h_offer_edge)
        for ctx in self.world.ranks:
            ctx.local_state.pop(self._slot, None)
        self._invalidate_derived()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        return sum(len(self.local_store(r)) for r in range(self.world.nranks))

    def num_directed_edges(self) -> int:
        total = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                total += len(record["adj"])
        return total

    def out_degree(self, vertex: Hashable) -> int:
        record = self.local_store(self.owner(vertex)).get(vertex)
        return len(record["adj"]) if record is not None else 0

    def degree(self, vertex: Hashable) -> int:
        record = self.local_store(self.owner(vertex)).get(vertex)
        return record["degree"] if record is not None else 0

    def vertex_meta(self, vertex: Hashable) -> Any:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            raise KeyError(f"vertex {vertex!r} not in DODGr")
        return record["meta"]

    def adjacency(self, vertex: Hashable) -> List[AdjEntry]:
        record = self.local_store(self.owner(vertex)).get(vertex)
        if record is None:
            return []
        return list(record["adj"])

    def max_out_degree(self) -> int:
        best = 0
        for rank in range(self.world.nranks):
            for record in self.local_store(rank).values():
                if len(record["adj"]) > best:
                    best = len(record["adj"])
        return best

    def wedge_count(self) -> int:
        """|W+|: the number of wedge checks the push algorithm will generate.

        Each pivot p contributes C(d+(p), 2) candidate checks (Section 4.3);
        summed as one array expression per rank when NumPy is available.
        """
        total = 0
        for rank in range(self.world.nranks):
            store = self.local_store(rank)
            if _np is not None:
                degrees = _np.fromiter(
                    (len(record["adj"]) for record in store.values()),
                    dtype=_np.int64,
                    count=len(store),
                )
                total += int((degrees * (degrees - 1) // 2).sum())
                continue
            for record in store.values():
                d_plus = len(record["adj"])
                total += d_plus * (d_plus - 1) // 2
        return total

    def local_vertices(self, rank: int) -> Iterator[Tuple[Hashable, Dict[str, Any]]]:
        yield from self.local_store(rank).items()

    def vertices(self) -> Iterator[Hashable]:
        for rank in range(self.world.nranks):
            yield from self.local_store(rank).keys()

    def directed_edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        for rank in range(self.world.nranks):
            for u, record in self.local_store(rank).items():
                for entry in record["adj"]:
                    yield (u, entry[0])

    def rank_edge_counts(self) -> List[int]:
        out = []
        for rank in range(self.world.nranks):
            out.append(sum(len(rec["adj"]) for rec in self.local_store(rank).values()))
        return out

    # ------------------------------------------------------------------
    def visit(self, ctx: RankContext, vertex: Hashable, func, *args: Any) -> None:
        """Send an RPC to the owner of ``vertex`` (DODGr.visit of Section 4.2).

        ``func(ctx, vertex, *args)`` executes on the owning rank where the
        vertex's record (metadata + Adj^m_+) is available via
        :meth:`local_store`.
        """
        ctx.async_call(self.owner(vertex), func, vertex, *args)
