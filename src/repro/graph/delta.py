"""Streaming edge-batch ingestion: the delta layer of incremental surveys.

TriPoll's evaluation graphs are *temporal* — comments, crawls and
transactions arrive over time — yet a classic survey run sees only one
frozen snapshot.  This module provides the ingestion half of the streaming
subsystem (the survey half lives in :mod:`repro.core.incremental`):

* :class:`DeltaBuffer` stages one batch of timestamped edge insertions
  (arbitrary edge/vertex metadata, timestamps by convention in the edge
  metadata as produced by :func:`~repro.graph.metadata.temporal_edge_meta`);
* :meth:`DeltaBuffer.apply` merges the staged batch into a live
  :class:`~repro.graph.distributed_graph.DistributedGraph` and rebuilds the
  degree-ordered :class:`~repro.graph.dodgr.DODGraph` through the vectorized
  ``mode="bulk"`` pipeline — the global ``<+`` order ids are remapped in the
  single :func:`~repro.graph.degree.order_positions` argsort that pipeline
  already performs, so the rebuilt graph is *bit-identical* to a from-scratch
  build over the merged edge set;
* :class:`AppliedDelta` describes the applied batch to the incremental
  survey: which undirected pairs are new, and — per rank — a boolean mask
  over the rebuilt CSR's edge positions marking the *new directed edges*.

Merge semantics are **first write wins**: a staged edge whose unordered pair
already exists in the graph (or appeared earlier in the same batch) is
dropped, and staged vertex metadata never overwrites metadata that is
already set.  This mirrors ``DistributedEdgeList.simplify("first")`` and is
what makes incremental surveys exactly replayable: the graph state after
``k`` batches equals the graph built from the first-seen edge set, so a full
recompute at any step is a well-defined parity oracle (see
``tests/core/test_incremental.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .distributed_graph import DistributedGraph
from .dodgr import DODGraph
from .edge_list import canonical_pair, validate_edge_columns

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

__all__ = ["DeltaBuffer", "AppliedDelta"]


@dataclass(eq=False)
class AppliedDelta:
    """One applied edge batch, described for the incremental survey engines.

    Produced by :meth:`DeltaBuffer.apply`.  ``dodgr`` is the *rebuilt*
    degree-ordered graph over the merged edge set; ``edges`` holds the
    accepted records (canonically ordered endpoints, first-write-wins
    metadata) and ``batch_index`` counts applied batches per buffer.
    """

    #: the DODGr rebuilt over the merged graph (``mode="bulk"``)
    dodgr: DODGraph
    #: accepted edge records ``(u, v, meta)`` with ``(u, v)`` canonical
    edges: List[Tuple[Hashable, Hashable, Any]]
    #: canonical unordered pairs of the accepted edges
    new_pairs: Set[Tuple[Hashable, Hashable]]
    #: 0-based index of this batch within its :class:`DeltaBuffer`
    batch_index: int
    #: per-rank new-directed-edge masks, built lazily (see :meth:`edge_mask`)
    _masks: Dict[int, Any] = field(default_factory=dict, repr=False)
    _new_keys: Optional[Any] = field(default=None, repr=False)

    def num_edges(self) -> int:
        """Number of accepted (new) undirected edges in this batch."""
        return len(self.edges)

    def is_new(self, u: Hashable, v: Hashable) -> bool:
        """True when the undirected edge (u, v) arrived in this batch."""
        return canonical_pair(u, v) in self.new_pairs

    # ------------------------------------------------------------------
    def directed_edge_keys(self) -> Any:
        """Composite ``src_order * order_count + tgt_order`` keys of new edges.

        Every DODGr directed edge points from the ``<+``-smaller vertex to
        the larger, so the directed form of an accepted pair is fixed by the
        rebuilt order ids; the sorted key array lets any rank test "is this
        directed edge new?" with one vectorized ``isin``/``searchsorted``.
        Requires NumPy (the scalar engines use :meth:`is_new` instead).
        """
        if self._new_keys is None:
            order_ids = self.dodgr.order_ids()
            stride = self.dodgr.order_count()
            keys = []
            for u, v, _meta in self.edges:
                a, b = order_ids[u], order_ids[v]
                if a > b:
                    a, b = b, a
                keys.append(a * stride + b)
            self._new_keys = _np.asarray(sorted(keys), dtype=_np.int64)
        return self._new_keys

    def edge_mask(self, rank: int) -> Any:
        """Boolean mask over rank ``rank``'s CSR edge positions: True = new.

        Position ``e`` of the mask corresponds to edge position ``e`` of
        ``dodgr.csr(rank)`` (the flattened ``Adj^m_+`` arrays); a True entry
        marks a directed edge whose undirected pair arrived in this batch.
        Built with one vectorized ``searchsorted`` over the rank's composite
        edge keys and cached.  Requires NumPy.
        """
        mask = self._masks.get(rank)
        if mask is None:
            csr = self.dodgr.csr(rank)
            cols = csr.columns()
            lengths = cols.indptr[1:] - cols.indptr[:-1]
            src_order = _np.repeat(cols.row_order_ids, lengths)
            composite = src_order * _np.int64(self.dodgr.order_count()) + csr.tgt_ids
            new_keys = self.directed_edge_keys()
            if new_keys.size:
                pos = _np.searchsorted(new_keys, composite)
                clipped = _np.minimum(pos, new_keys.size - 1)
                mask = (pos < new_keys.size) & (new_keys[clipped] == composite)
            else:
                mask = _np.zeros(composite.size, dtype=bool)
            self._masks[rank] = mask
        return mask

    def new_adjacency(self, rank: int) -> Dict[Hashable, List[Tuple[Any, int]]]:
        """Per-vertex new entries of rank ``rank``'s store (scalar engines).

        Maps each local vertex ``q`` with at least one new directed edge to
        the list of ``(adjacency entry, position in Adj^m_+(q))`` pairs of
        its new entries, in adjacency order.  The scalar incremental engine
        intersects old-old wedges against these filtered lists.
        """
        out: Dict[Hashable, List[Tuple[Any, int]]] = {}
        store = self.dodgr.local_store(rank)
        for q, record in store.items():
            filtered = [
                (entry, i)
                for i, entry in enumerate(record["adj"])
                if canonical_pair(q, entry[0]) in self.new_pairs
            ]
            if filtered:
                out[q] = filtered
        return out


class DeltaBuffer:
    """A staging buffer of edge-batch insertions for streaming surveys.

    Typical use (see ``examples/streaming_closure_times.py``)::

        delta = DeltaBuffer(world)
        delta.stage_edges(batch_records)          # (u, v, meta) tuples
        applied = delta.apply(graph)              # merge + bulk DODGr rebuild
        incremental_triangle_survey(applied.dodgr, applied, reducer.callback)

    The buffer is reusable: :meth:`apply` clears the staged edges and bumps
    the batch counter, so one buffer drives a whole batch schedule.
    """

    def __init__(self, world) -> None:
        self.world = world
        self._edges: List[Tuple[Hashable, Hashable, Any]] = []
        self._vertex_meta: Dict[Hashable, Any] = {}
        self._applied_batches = 0

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def stage_edge(self, u: Hashable, v: Hashable, meta: Any = None) -> None:
        """Stage one undirected edge insertion (self loops are dropped)."""
        if u == v:
            return
        self._edges.append((u, v, meta))

    def stage_edges(
        self, edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]]
    ) -> None:
        """Stage an iterable of ``(u, v)`` or ``(u, v, meta)`` records."""
        for edge in edges:
            if len(edge) == 2:
                self.stage_edge(edge[0], edge[1])
            else:
                self.stage_edge(edge[0], edge[1], edge[2])

    def stage_columns(
        self, us: Any, vs: Any, edge_metas: Optional[List[Any]] = None, edge_meta: Any = None
    ) -> None:
        """Stage parallel endpoint columns (one shared or one per-edge meta).

        Malformed columns — ragged lengths, non-integer dtype, negative
        ids — raise :class:`ValueError` naming the offending column before
        anything is staged.
        """
        validate_edge_columns(us, vs, edge_metas)
        for i, (u, v) in enumerate(zip(us, vs)):
            meta = edge_metas[i] if edge_metas is not None else edge_meta
            self.stage_edge(int(u), int(v), meta)

    def stage_vertex_meta(self, vertex: Hashable, meta: Any) -> None:
        """Stage vertex metadata (applied only where none is set yet)."""
        self._vertex_meta[vertex] = meta

    @property
    def pending_edges(self) -> int:
        """Number of staged (not yet applied) edge records."""
        return len(self._edges)

    @property
    def applied_batches(self) -> int:
        """Number of batches this buffer has applied so far."""
        return self._applied_batches

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def apply(self, graph: DistributedGraph, name: Optional[str] = None) -> AppliedDelta:
        """Merge the staged batch into ``graph`` and rebuild the DODGr.

        Staged edges whose unordered pair already exists in ``graph`` — or
        appeared earlier in this batch — are dropped (first write wins), as
        is staged vertex metadata for vertices that already carry some.  The
        DODGr is rebuilt from scratch through ``DODGraph.build(graph,
        mode="bulk")``: the vectorized pipeline re-derives the global ``<+``
        order ids in its single argsort pass, so the result is bit-identical
        to a cold build over the merged edge set (degree changes from the
        new edges re-orient old directed edges exactly as a full rebuild
        would).

        Parameters
        ----------
        graph:
            The live decorated graph; mutated in place.
        name:
            Optional name of the rebuilt DODGr (defaults to
            ``"<graph.name>@<batch index>"``).

        Returns the :class:`AppliedDelta` describing the accepted edges and
        carrying the rebuilt :class:`~repro.graph.dodgr.DODGraph`.
        """
        accepted: List[Tuple[Hashable, Hashable, Any]] = []
        new_pairs: Set[Tuple[Hashable, Hashable]] = set()
        for u, v, meta in self._edges:
            pair = canonical_pair(u, v)
            if pair in new_pairs or graph.has_edge(pair[0], pair[1]):
                continue
            new_pairs.add(pair)
            accepted.append((pair[0], pair[1], meta))
            graph.add_edge(pair[0], pair[1], meta)
        for vertex, meta in self._vertex_meta.items():
            if not graph.has_vertex(vertex) or graph.vertex_meta(vertex) is None:
                graph.set_vertex_meta(vertex, meta)
        self._edges = []
        self._vertex_meta = {}
        batch_index = self._applied_batches
        self._applied_batches += 1
        dodgr = DODGraph.build(
            graph, mode="bulk", name=name or f"{graph.name}@{batch_index}"
        )
        return AppliedDelta(
            dodgr=dodgr, edges=accepted, new_pairs=new_pairs, batch_index=batch_index
        )
