"""Edge-list and vertex-metadata file I/O.

The paper's pipeline ingests datasets from edge-list files (with optional
per-edge metadata columns such as timestamps) plus vertex tables (e.g. the
URL/FQDN of every page in the Web Data Commons graph).  This module provides
a small, dependency-free text format:

* **edge files**: one edge per line, tab separated:
  ``u<TAB>v[<TAB>metadata-as-JSON]``
* **vertex files**: one vertex per line: ``v<TAB>metadata-as-JSON``

Vertex ids are written as integers when possible, otherwise as JSON strings.
Lines starting with ``#`` are comments.  Readers can partition the lines
across the ranks of a world so that ingestion exercises the asynchronous
runtime like a parallel file read would.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..runtime.world import World
from .edge_list import DistributedEdgeList

__all__ = [
    "write_edge_file",
    "read_edge_file",
    "write_vertex_file",
    "read_vertex_file",
    "read_edges_partitioned",
    "load_edge_list",
]


def _format_vertex(vertex: Hashable) -> str:
    if isinstance(vertex, bool):
        return json.dumps(vertex)
    if isinstance(vertex, int):
        return str(vertex)
    return json.dumps(vertex)


def _parse_vertex(token: str) -> Hashable:
    try:
        return int(token)
    except ValueError:
        return json.loads(token)


def write_edge_file(
    path: str | Path,
    edges: Iterable[Tuple[Hashable, Hashable, Any]] | Iterable[Tuple[Hashable, Hashable]],
    header: Optional[str] = None,
) -> int:
    """Write edges to ``path``; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                meta = None
            else:
                u, v, meta = edge  # type: ignore[misc]
            if meta is None:
                handle.write(f"{_format_vertex(u)}\t{_format_vertex(v)}\n")
            else:
                handle.write(
                    f"{_format_vertex(u)}\t{_format_vertex(v)}\t{json.dumps(meta)}\n"
                )
            count += 1
    return count


def read_edge_file(path: str | Path) -> Iterator[Tuple[Hashable, Hashable, Any]]:
    """Yield (u, v, metadata) records from an edge file (metadata None if absent)."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected at least 2 columns, got {len(parts)}")
            u = _parse_vertex(parts[0])
            v = _parse_vertex(parts[1])
            meta = json.loads(parts[2]) if len(parts) > 2 and parts[2] != "" else None
            yield (u, v, meta)


def write_vertex_file(path: str | Path, vertex_meta: Dict[Hashable, Any]) -> int:
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for vertex, meta in vertex_meta.items():
            handle.write(f"{_format_vertex(vertex)}\t{json.dumps(meta)}\n")
            count += 1
    return count


def read_vertex_file(path: str | Path) -> Dict[Hashable, Any]:
    out: Dict[Hashable, Any] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 2 columns, got {len(parts)}")
            out[_parse_vertex(parts[0])] = json.loads(parts[1])
    return out


def read_edges_partitioned(
    path: str | Path, nranks: int
) -> List[List[Tuple[Hashable, Hashable, Any]]]:
    """Read an edge file splitting records round-robin across ``nranks`` ranks.

    Mirrors a parallel file read where each rank ingests a share of the
    lines; the result feeds :meth:`DistributedGraph.ingest_async`.
    """
    if nranks <= 0:
        raise ValueError("nranks must be positive")
    per_rank: List[List[Tuple[Hashable, Hashable, Any]]] = [[] for _ in range(nranks)]
    for index, record in enumerate(read_edge_file(path)):
        per_rank[index % nranks].append(record)
    return per_rank


def load_edge_list(world: World, path: str | Path) -> DistributedEdgeList:
    """Read an edge file into a :class:`DistributedEdgeList` on ``world``."""
    edge_list = DistributedEdgeList(world)
    edge_list.extend(read_edge_file(path))
    return edge_list
