"""Degree ordering used to build the degree-ordered directed graph (DODGr).

Section 3 defines the total order ``u <+ v`` as

* ``d(u) < d(v)``, or
* ``d(u) == d(v)`` and ``hash(u) < hash(v)``

with a deterministic tie-breaking hash.  This reproduction additionally
breaks exact hash collisions by the vertex id itself so the relation is a
strict total order even on adversarial inputs (the C++ code relies on a
collision-free 64-bit hash of distinct ids; in Python we make the guarantee
explicit).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Sequence, Tuple

from ..runtime.world import stable_hash, stable_hash_int_array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

__all__ = ["order_key", "precedes", "DegreeOrder", "order_positions"]


def order_key(vertex: Hashable, degree: int) -> Tuple[int, int, str]:
    """Sort key implementing the ``<+`` comparison for a vertex of known degree."""
    return (degree, stable_hash(vertex), repr(vertex))


def precedes(u: Hashable, du: int, v: Hashable, dv: int) -> bool:
    """True when ``u <+ v`` under the degree ordering."""
    return order_key(u, du) < order_key(v, dv)


def order_positions(
    vertices: Sequence[Hashable], degrees: Sequence[int]
) -> Tuple[Any, Any]:
    """Dense ranks of ``vertices`` under ``<+``, computed with array argsort.

    Returns ``(pos, order)`` where ``pos[i]`` is the rank of ``vertices[i]``
    in the global degree order and ``order`` is the inverse permutation
    (``vertices[order[k]]`` is the ``k``-th vertex in ``<+`` order) — exactly
    the ordering ``sorted(..., key=order_key)`` produces, but via one
    ``np.lexsort`` over (hash, degree) columns instead of per-vertex key
    tuples.  Integer vertex ids hash through the vectorized mix; other id
    types fall back to a scalar hashing pass but still sort columnar.  The
    ``repr`` tie-break of :func:`order_key` only matters on exact 64-bit
    hash collisions between equal-degree vertices; those (vanishingly rare)
    runs are re-sorted scalar-side so the result matches the legacy key on
    adversarial inputs too.

    Without NumPy the fallback is the legacy sort itself, so callers get
    identical results either way.
    """
    n = len(vertices)
    if _np is None:
        order_list = sorted(range(n), key=lambda i: order_key(vertices[i], degrees[i]))
        pos_list = [0] * n
        for rank, i in enumerate(order_list):
            pos_list[i] = rank
        return pos_list, order_list
    deg = _np.asarray(degrees, dtype=_np.int64)
    hashes = None
    if n and all(type(v) is int for v in vertices):
        try:
            ids = _np.fromiter(vertices, dtype=_np.int64, count=n)
        except OverflowError:  # ids beyond int64: scalar hashing below
            ids = None
        if ids is not None:
            hashes = stable_hash_int_array(ids)
    if hashes is None:
        # Scalar hashing pass (non-int or huge ids); results are < 2**63 so
        # the columnar sort below still applies.
        hashes = _np.fromiter(
            (stable_hash(v) for v in vertices), dtype=_np.int64, count=n
        )
    order = _np.lexsort((hashes, deg))
    if n > 1:
        deg_sorted = deg[order]
        hash_sorted = hashes[order]
        ties = (deg_sorted[1:] == deg_sorted[:-1]) & (hash_sorted[1:] == hash_sorted[:-1])
        if ties.any():
            order_list = order.tolist()
            tie_flags = ties.tolist()
            start = 0
            while start < n - 1:
                if not tie_flags[start]:
                    start += 1
                    continue
                end = start + 1
                while end < n - 1 and tie_flags[end]:
                    end += 1
                run = order_list[start : end + 1]
                run.sort(key=lambda i: repr(vertices[i]))
                order_list[start : end + 1] = run
                start = end + 1
            order = _np.asarray(order_list, dtype=_np.int64)
    pos = _np.empty(n, dtype=_np.int64)
    pos[order] = _np.arange(n, dtype=_np.int64)
    return pos, order


class DegreeOrder:
    """Convenience wrapper around a degree table implementing ``<+`` queries."""

    def __init__(self, degrees: Mapping[Hashable, int]) -> None:
        self.degrees: Dict[Hashable, int] = dict(degrees)

    def degree(self, vertex: Hashable) -> int:
        return self.degrees.get(vertex, 0)

    def key(self, vertex: Hashable) -> Tuple[int, int, str]:
        return order_key(vertex, self.degree(vertex))

    def precedes(self, u: Hashable, v: Hashable) -> bool:
        return self.key(u) < self.key(v)

    def sorted_vertices(self, vertices: Iterable[Hashable]) -> list:
        return sorted(vertices, key=self.key)

    def max_vertex(self, vertices: Iterable[Hashable]) -> Any:
        return max(vertices, key=self.key)

    def min_vertex(self, vertices: Iterable[Hashable]) -> Any:
        return min(vertices, key=self.key)
