"""Degree ordering used to build the degree-ordered directed graph (DODGr).

Section 3 defines the total order ``u <+ v`` as

* ``d(u) < d(v)``, or
* ``d(u) == d(v)`` and ``hash(u) < hash(v)``

with a deterministic tie-breaking hash.  This reproduction additionally
breaks exact hash collisions by the vertex id itself so the relation is a
strict total order even on adversarial inputs (the C++ code relies on a
collision-free 64-bit hash of distinct ids; in Python we make the guarantee
explicit).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Tuple

from ..runtime.world import stable_hash

__all__ = ["order_key", "precedes", "DegreeOrder"]


def order_key(vertex: Hashable, degree: int) -> Tuple[int, int, str]:
    """Sort key implementing the ``<+`` comparison for a vertex of known degree."""
    return (degree, stable_hash(vertex), repr(vertex))


def precedes(u: Hashable, du: int, v: Hashable, dv: int) -> bool:
    """True when ``u <+ v`` under the degree ordering."""
    return order_key(u, du) < order_key(v, dv)


class DegreeOrder:
    """Convenience wrapper around a degree table implementing ``<+`` queries."""

    def __init__(self, degrees: Mapping[Hashable, int]) -> None:
        self.degrees: Dict[Hashable, int] = dict(degrees)

    def degree(self, vertex: Hashable) -> int:
        return self.degrees.get(vertex, 0)

    def key(self, vertex: Hashable) -> Tuple[int, int, str]:
        return order_key(vertex, self.degree(vertex))

    def precedes(self, u: Hashable, v: Hashable) -> bool:
        return self.key(u) < self.key(v)

    def sorted_vertices(self, vertices: Iterable[Hashable]) -> list:
        return sorted(vertices, key=self.key)

    def max_vertex(self, vertices: Iterable[Hashable]) -> Any:
        return max(vertices, key=self.key)

    def min_vertex(self, vertices: Iterable[Hashable]) -> Any:
        return min(vertices, key=self.key)
