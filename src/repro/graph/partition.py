"""Vertex partitioners: assign each vertex id to an owning rank.

Section 4.2: "We use random or cyclic partitionings of vertices across MPI
ranks and do not attempt to do more sophisticated partitionings in this
work."  Constructing G+ tames the hub vertices enough that cyclic/random
placement is palatable.  These partitioners are small strategy objects so
that the graph structures, the baselines (which use different schemes — 2D
blocks for Tom et al., edge-balanced for TriC) and the tests can all share
one interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List

from ..runtime.world import stable_hash, stable_hash_int_array, stable_tuple_hash_array

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

__all__ = [
    "Partitioner",
    "CyclicPartitioner",
    "HashPartitioner",
    "BlockPartitioner",
    "ExplicitPartitioner",
    "partition_balance",
]


class Partitioner(ABC):
    """Maps vertex identifiers to owner ranks."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks

    @abstractmethod
    def owner(self, vertex: Hashable) -> int:
        """Rank that owns ``vertex`` (0 <= owner < nranks)."""

    def owners(self, vertices: Iterable[Hashable]) -> List[int]:
        return [self.owner(v) for v in vertices]

    def owners_array(self, ids: Any) -> Any:
        """Owner ranks of a column of *integer* vertex ids, elementwise.

        ``owners_array(a)[i] == owner(int(a[i]))`` for int64-representable
        ids.  The base implementation loops; partitioners with arithmetic
        placement rules override it with vectorized NumPy paths — this is
        the bulk-ingest analogue of hoisting the per-vertex owner lookup out
        of the per-edge loop.  Boolean ids are out of scope (columns are
        genuine integer id spaces).
        """
        if _np is None:
            return [self.owner(int(v)) for v in ids]
        ids = _np.asarray(ids)
        return _np.fromiter(
            (self.owner(v) for v in ids.tolist()), dtype=_np.int64, count=len(ids)
        )


class CyclicPartitioner(Partitioner):
    """Round-robin by integer vertex id: vertex ``i`` lives on rank ``i % P``.

    Requires integer vertex ids; non-integers fall back to a stable hash.
    """

    def owner(self, vertex: Hashable) -> int:
        if isinstance(vertex, bool) or not isinstance(vertex, int):
            return stable_hash(vertex) % self.nranks
        return vertex % self.nranks

    def owners_array(self, ids: Any) -> Any:
        if _np is None:
            return super().owners_array(ids)
        return _np.asarray(ids, dtype=_np.int64) % self.nranks


class HashPartitioner(Partitioner):
    """Pseudo-random placement via a deterministic 64-bit mix of the vertex id.

    This is the partitioner the paper's distributed map effectively uses
    (keys are hashed to ranks); it is the default for TriPoll graphs.
    """

    def __init__(self, nranks: int, seed: int = 0) -> None:
        super().__init__(nranks)
        self.seed = seed

    def owner(self, vertex: Hashable) -> int:
        if self.seed:
            return stable_hash((self.seed, vertex)) % self.nranks
        return stable_hash(vertex) % self.nranks

    def owners_array(self, ids: Any) -> Any:
        if _np is None:
            return super().owners_array(ids)
        hashes = stable_hash_int_array(_np.asarray(ids, dtype=_np.int64))
        if self.seed:
            # Replay stable_hash((seed, vertex)) with the shared combiner.
            hashes = stable_tuple_hash_array([stable_hash(self.seed), hashes])
        return hashes % self.nranks


class BlockPartitioner(Partitioner):
    """Contiguous blocks of the integer id space: rank ``r`` owns ids in
    ``[r * ceil(n / P), (r+1) * ceil(n / P))``.

    Useful as a deliberately *bad* partitioner for scale-free graphs in the
    load-balance tests (hubs cluster in id ranges for some generators).
    """

    def __init__(self, nranks: int, num_vertices: int) -> None:
        super().__init__(nranks)
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = num_vertices
        self.block = (num_vertices + nranks - 1) // nranks if num_vertices else 1

    def owner(self, vertex: Hashable) -> int:
        if isinstance(vertex, bool) or not isinstance(vertex, int):
            return stable_hash(vertex) % self.nranks
        if vertex < 0:
            return stable_hash(vertex) % self.nranks
        return min(vertex // self.block, self.nranks - 1)

    def owners_array(self, ids: Any) -> Any:
        if _np is None:
            return super().owners_array(ids)
        ids = _np.asarray(ids, dtype=_np.int64)
        owners = _np.minimum(ids // self.block, self.nranks - 1)
        negative = ids < 0
        if negative.any():
            owners[negative] = stable_hash_int_array(ids[negative]) % self.nranks
        return owners


class ExplicitPartitioner(Partitioner):
    """Placement given by an explicit vertex -> rank dictionary.

    Vertices missing from the assignment fall back to hash placement, so the
    structure stays usable when new vertices appear (e.g. during ingestion of
    a streamed edge list).
    """

    def __init__(self, nranks: int, assignment: Dict[Hashable, int]) -> None:
        super().__init__(nranks)
        for vertex, rank in assignment.items():
            if rank < 0 or rank >= nranks:
                raise ValueError(f"vertex {vertex!r} assigned to invalid rank {rank}")
        self.assignment = dict(assignment)

    def owner(self, vertex: Hashable) -> int:
        rank = self.assignment.get(vertex)
        if rank is None:
            return stable_hash(vertex) % self.nranks
        return rank


def partition_balance(partitioner: Partitioner, vertices: Iterable[Hashable]) -> Dict[str, float]:
    """Summarise how evenly a partitioner spreads ``vertices`` over ranks.

    Returns counts per rank plus the max/mean imbalance factor — the quantity
    that motivates the paper's observation that DODGr construction makes
    cyclic partitioning palatable.
    """
    counts = [0] * partitioner.nranks
    total = 0
    for vertex in vertices:
        counts[partitioner.owner(vertex)] += 1
        total += 1
    mean = total / partitioner.nranks if partitioner.nranks else 0.0
    imbalance = (max(counts) / mean) if mean > 0 else 1.0
    return {
        "counts": counts,
        "total": total,
        "mean": mean,
        "max": max(counts) if counts else 0,
        "imbalance": imbalance,
    }
