"""Directed-graph support: original-direction annotations on symmetrized edges.

Section 4 of the paper notes that although TriPoll treats inputs as
undirected (its algorithms run on the degree-ordered orientation G+, not on
the input orientation), directed graphs are supported by symmetrizing the
input and keeping "an additional two bits of storage" per edge recording the
original directionality — *as-seen*, *reversed*, or *bidirectional* — so that
callbacks can still reason about direction (e.g. "who messaged whom first").

This module implements that preparation step: it converts a directed edge
stream into undirected records whose metadata wraps the user's edge metadata
together with the original orientation, plus helpers for callbacks to query
the direction between any two vertices of a triangle.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from ..runtime.serialization import register_record
from .edge_list import canonical_pair

__all__ = [
    "EdgeDirection",
    "DirectedEdgeMeta",
    "symmetrize_directed_edges",
    "direction_between",
    "original_edge_meta",
]


class EdgeDirection(str, Enum):
    """Original orientation of a symmetrized edge, relative to canonical order.

    The canonical order of an undirected pair is ``canonical_pair(u, v)``;
    ``FORWARD`` means the input contained exactly the edge (lo -> hi),
    ``REVERSED`` means it contained exactly (hi -> lo), ``BIDIRECTIONAL``
    means both directions were present.
    """

    FORWARD = "forward"
    REVERSED = "reversed"
    BIDIRECTIONAL = "bidirectional"


@dataclass(frozen=True)
class DirectedEdgeMeta:
    """Edge metadata wrapper carrying the original direction.

    ``meta`` is the user's metadata for the edge (for bidirectional pairs the
    forward direction's metadata wins and the reverse direction's metadata is
    kept in ``reverse_meta``).
    """

    direction: str
    meta: Any = None
    reverse_meta: Any = None


# Direction-annotated metadata travels inside push/pull messages, so the
# wrapper must be known to the wire codec on every rank.
register_record(DirectedEdgeMeta)


def symmetrize_directed_edges(
    records: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
    drop_self_loops: bool = True,
) -> List[Tuple[Hashable, Hashable, DirectedEdgeMeta]]:
    """Turn a directed edge stream into undirected records with direction labels.

    Parallel edges in the same direction keep the first metadata seen.  The
    output contains one record per unordered pair, oriented canonically, with
    a :class:`DirectedEdgeMeta` payload.
    """
    forward: Dict[Tuple[Hashable, Hashable], Any] = {}
    backward: Dict[Tuple[Hashable, Hashable], Any] = {}
    order: List[Tuple[Hashable, Hashable]] = []
    seen = set()
    for record in records:
        if len(record) == 2:
            u, v = record  # type: ignore[misc]
            meta = None
        else:
            u, v, meta = record  # type: ignore[misc]
        if drop_self_loops and u == v:
            continue
        pair = canonical_pair(u, v)
        if pair not in seen:
            seen.add(pair)
            order.append(pair)
        if (u, v) == pair:
            forward.setdefault(pair, meta)
        else:
            backward.setdefault(pair, meta)

    out: List[Tuple[Hashable, Hashable, DirectedEdgeMeta]] = []
    for pair in order:
        has_forward = pair in forward
        has_backward = pair in backward
        if has_forward and has_backward:
            direction = EdgeDirection.BIDIRECTIONAL.value
            meta = forward[pair]
            reverse_meta = backward[pair]
        elif has_forward:
            direction = EdgeDirection.FORWARD.value
            meta = forward[pair]
            reverse_meta = None
        else:
            direction = EdgeDirection.REVERSED.value
            meta = backward[pair]
            reverse_meta = None
        out.append((pair[0], pair[1], DirectedEdgeMeta(direction, meta, reverse_meta)))
    return out


def direction_between(u: Hashable, v: Hashable, edge_meta: DirectedEdgeMeta) -> Optional[str]:
    """Resolve the original direction of the edge between ``u`` and ``v``.

    Returns ``"u->v"``, ``"v->u"`` or ``"both"`` according to the stored
    annotation; ``None`` if the metadata is not a :class:`DirectedEdgeMeta`.
    Intended for use inside survey callbacks, where the vertices arrive in
    degree order rather than input order.
    """
    if not isinstance(edge_meta, DirectedEdgeMeta):
        return None
    lo, hi = canonical_pair(u, v)
    if edge_meta.direction == EdgeDirection.BIDIRECTIONAL.value:
        return "both"
    points_lo_to_hi = edge_meta.direction == EdgeDirection.FORWARD.value
    if (u, v) == (lo, hi):
        return "u->v" if points_lo_to_hi else "v->u"
    return "v->u" if points_lo_to_hi else "u->v"


def original_edge_meta(edge_meta: Any) -> Any:
    """Unwrap the user's metadata from a possibly direction-annotated edge."""
    if isinstance(edge_meta, DirectedEdgeMeta):
        return edge_meta.meta
    return edge_meta
