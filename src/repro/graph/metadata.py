"""Metadata model for decorated temporal graphs.

The paper's input model (Section 3): every vertex ``v`` carries
``meta(v)`` and every undirected edge ``(u, v)`` carries
``meta(u, v) = meta(v, u)``.  Metadata values are arbitrary — discrete
labels, floating-point ratings, timestamps, free-form strings — and TriPoll
deliberately does not interpret them; only user callbacks do.

In this reproduction a metadata value is *any value the runtime codec can
serialize* (scalars, strings, tuples, dicts, registered dataclasses).  This
module provides:

* :class:`TriangleMetadata` — the six pieces of metadata (plus the vertex
  ids) handed to a survey callback when a triangle ``Δpqr`` is identified,
  with ``p <+ q <+ r`` in degree order.
* small typed conveniences for common decorations (temporal edges, labelled
  vertices) used by the examples and generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = [
    "TriangleMetadata",
    "TriangleBatch",
    "TRIANGLE_COLUMNS",
    "temporal_edge_meta",
    "labeled_vertex_meta",
    "edge_timestamp",
    "vertex_label",
]


@dataclass(frozen=True)
class TriangleMetadata:
    """Everything a survey callback may inspect about one triangle Δpqr.

    Vertices satisfy the degree ordering ``p <+ q <+ r`` (Section 3), so
    callbacks that care about pivot/anchor roles can rely on the order.
    """

    #: vertex identifiers in degree order (p is the pivot / lowest degree)
    p: Any
    q: Any
    r: Any
    #: vertex metadata
    meta_p: Any
    meta_q: Any
    meta_r: Any
    #: edge metadata; ``meta_pq`` is the metadata of the undirected edge (p, q)
    meta_pq: Any
    meta_pr: Any
    meta_qr: Any

    def vertices(self) -> Tuple[Any, Any, Any]:
        return (self.p, self.q, self.r)

    def vertex_metadata(self) -> Tuple[Any, Any, Any]:
        return (self.meta_p, self.meta_q, self.meta_r)

    def edge_metadata(self) -> Tuple[Any, Any, Any]:
        return (self.meta_pq, self.meta_pr, self.meta_qr)

    def all_distinct_vertex_metadata(self) -> bool:
        """True when the three vertex metadata values are pairwise distinct.

        This is the filter used by Algorithm 3 (max edge label distribution)
        and Algorithm 4 / the FQDN survey ("only counting triangles with 3
        distinct FQDNs").
        """
        return (
            self.meta_p != self.meta_q
            and self.meta_q != self.meta_r
            and self.meta_p != self.meta_r
        )


#: Column names a :class:`TriangleBatch` can materialise, in the field order
#: of :class:`TriangleMetadata`.
TRIANGLE_COLUMNS = (
    "p",
    "q",
    "r",
    "meta_p",
    "meta_q",
    "meta_r",
    "meta_pq",
    "meta_pr",
    "meta_qr",
)


class TriangleBatch:
    """A columnar batch of triangles: one lazily-decoded list per column.

    The columnar survey engine identifies many triangles per intersection
    call but most reducers only touch a couple of the nine
    :class:`TriangleMetadata` fields (a counting callback touches none).
    Instead of materialising one metadata object per triangle, the engine
    hands reducers a :class:`TriangleBatch` whose columns — ``p``, ``q``,
    ``r`` and the six metadata columns — are *builder closures over the CSR
    match arrays*: a column is decoded into a list (triangle ``i`` at index
    ``i``) the first time it is read and cached, and unread columns cost
    nothing.  Triangle order within a batch is the engine's match order,
    which is also the order the scalar fallback invokes per-triangle
    callbacks in, so batch reducers that apply their side effects in column
    order are bit-identical to the scalar path.
    """

    __slots__ = ("_size", "_builders", "_columns")

    def __init__(self, size: int, builders) -> None:
        self._size = size
        self._builders = builders
        self._columns: dict = {}

    def __len__(self) -> int:
        return self._size

    def column(self, name: str) -> list:
        """The named column as a list of length ``len(self)`` (cached)."""
        col = self._columns.get(name)
        if col is None:
            col = self._builders[name]()
            self._columns[name] = col
        return col

    @property
    def p(self) -> list:
        return self.column("p")

    @property
    def q(self) -> list:
        return self.column("q")

    @property
    def r(self) -> list:
        return self.column("r")

    @property
    def meta_p(self) -> list:
        return self.column("meta_p")

    @property
    def meta_q(self) -> list:
        return self.column("meta_q")

    @property
    def meta_r(self) -> list:
        return self.column("meta_r")

    @property
    def meta_pq(self) -> list:
        return self.column("meta_pq")

    @property
    def meta_pr(self) -> list:
        return self.column("meta_pr")

    @property
    def meta_qr(self) -> list:
        return self.column("meta_qr")

    def triangles(self):
        """Row view: yield one :class:`TriangleMetadata` per triangle, in order.

        The adapter the scalar fallback uses when a survey callback has no
        batch counterpart; it materialises every column.
        """
        for fields in zip(*(self.column(name) for name in TRIANGLE_COLUMNS)):
            yield TriangleMetadata(*fields)


# ---------------------------------------------------------------------------
# Conventional decorations used by the examples / generators
# ---------------------------------------------------------------------------


def temporal_edge_meta(timestamp: float, label: Any = None) -> Any:
    """Edge metadata for temporal graphs: a timestamp, optionally with a label.

    Stored as a bare float when there is no label (the common case for the
    Reddit experiment) to keep serialized messages small, otherwise as a
    ``(timestamp, label)`` tuple.
    """
    if label is None:
        return float(timestamp)
    return (float(timestamp), label)


def edge_timestamp(edge_meta: Any) -> float:
    """Extract the timestamp from metadata produced by :func:`temporal_edge_meta`."""
    if isinstance(edge_meta, tuple):
        return float(edge_meta[0])
    if isinstance(edge_meta, dict):
        return float(edge_meta["timestamp"])
    return float(edge_meta)


def labeled_vertex_meta(label: Any, **extra: Any) -> Any:
    """Vertex metadata carrying a discrete label plus optional named fields."""
    if not extra:
        return label
    meta = {"label": label}
    meta.update(extra)
    return meta


def vertex_label(vertex_meta: Any) -> Any:
    """Extract the label from metadata produced by :func:`labeled_vertex_meta`."""
    if isinstance(vertex_meta, dict):
        return vertex_meta.get("label")
    return vertex_meta
