"""Graph properties reported in Table 1 of the paper.

For every dataset the paper lists ``|V|``, ``|E|`` (symmetrized/directed edge
count), ``|T|`` (triangle count), ``d_max`` (maximum degree) and ``d+_max``
(maximum out-degree in the degree-ordered directed graph).  This module
computes those quantities for any of the representations used in this
reproduction (raw edge records, :class:`GeneratedGraph`,
:class:`DistributedGraph`, :class:`DODGraph`), including a fast serial
forward-algorithm triangle counter that doubles as the ground-truth oracle
for the distributed algorithms' tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..runtime.world import stable_hash
from .degree import order_key
from .distributed_graph import DistributedGraph
from .dodgr import DODGraph
from .generators import GeneratedGraph

__all__ = [
    "GraphSummary",
    "build_adjacency",
    "serial_triangle_count",
    "serial_triangle_list",
    "max_dodgr_out_degree",
    "dodgr_wedge_count",
    "summarize_edges",
    "summarize_distributed",
]


@dataclass(frozen=True)
class GraphSummary:
    """The row of Table 1 for one dataset."""

    name: str
    num_vertices: int
    num_directed_edges: int
    num_triangles: int
    max_degree: int
    max_dodgr_out_degree: int
    wedge_count: int

    def as_row(self) -> Dict[str, Any]:
        return {
            "Graph": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_directed_edges,
            "|T|": self.num_triangles,
            "d_max": self.max_degree,
            "d+_max": self.max_dodgr_out_degree,
            "|W+|": self.wedge_count,
        }


# ---------------------------------------------------------------------------
# Serial reference computations
# ---------------------------------------------------------------------------


def build_adjacency(
    edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
) -> Dict[Hashable, Set[Hashable]]:
    """Undirected adjacency sets from edge records (self loops dropped)."""
    adjacency: Dict[Hashable, Set[Hashable]] = {}
    for edge in edges:
        u, v = edge[0], edge[1]
        if u == v:
            continue
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    return adjacency


def _dodgr_out_neighbours(
    adjacency: Dict[Hashable, Set[Hashable]],
) -> Dict[Hashable, List[Hashable]]:
    """Out-neighbour lists of the degree-ordered orientation of ``adjacency``."""
    keys = {u: order_key(u, len(neigh)) for u, neigh in adjacency.items()}
    out: Dict[Hashable, List[Hashable]] = {}
    for u, neighbours in adjacency.items():
        ku = keys[u]
        out[u] = sorted((v for v in neighbours if ku < keys[v]), key=lambda v: keys[v])
    return out


def serial_triangle_count(
    edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
) -> int:
    """Exact triangle count via the serial forward (degree-ordered) algorithm."""
    adjacency = build_adjacency(edges)
    dodgr = _dodgr_out_neighbours(adjacency)
    out_sets = {u: set(nbrs) for u, nbrs in dodgr.items()}
    count = 0
    for p, out_p in dodgr.items():
        for i, q in enumerate(out_p):
            out_q = out_sets[q]
            for r in out_p[i + 1 :]:
                if r in out_q:
                    count += 1
    return count


def serial_triangle_list(
    edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
) -> List[Tuple[Hashable, Hashable, Hashable]]:
    """All triangles as (p, q, r) tuples with p <+ q <+ r (test oracle)."""
    adjacency = build_adjacency(edges)
    dodgr = _dodgr_out_neighbours(adjacency)
    out_sets = {u: set(nbrs) for u, nbrs in dodgr.items()}
    triangles: List[Tuple[Hashable, Hashable, Hashable]] = []
    for p, out_p in dodgr.items():
        for i, q in enumerate(out_p):
            out_q = out_sets[q]
            for r in out_p[i + 1 :]:
                if r in out_q:
                    triangles.append((p, q, r))
    return triangles


def max_dodgr_out_degree(
    edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
) -> int:
    adjacency = build_adjacency(edges)
    dodgr = _dodgr_out_neighbours(adjacency)
    return max((len(nbrs) for nbrs in dodgr.values()), default=0)


def dodgr_wedge_count(
    edges: Iterable[Tuple[Hashable, Hashable] | Tuple[Hashable, Hashable, Any]],
) -> int:
    """|W+| — the number of wedge checks the push algorithm generates."""
    adjacency = build_adjacency(edges)
    dodgr = _dodgr_out_neighbours(adjacency)
    return sum(len(nbrs) * (len(nbrs) - 1) // 2 for nbrs in dodgr.values())


# ---------------------------------------------------------------------------
# Summaries (Table 1 rows)
# ---------------------------------------------------------------------------


def summarize_edges(
    edges: List[Tuple[Hashable, Hashable, Any]] | GeneratedGraph,
    name: Optional[str] = None,
) -> GraphSummary:
    """Compute a Table 1 row from raw edge records or a generated graph."""
    if isinstance(edges, GeneratedGraph):
        records = edges.edges
        graph_name = name or edges.name
    else:
        records = list(edges)
        graph_name = name or "graph"
    adjacency = build_adjacency(records)
    dodgr = _dodgr_out_neighbours(adjacency)
    out_sets = {u: set(nbrs) for u, nbrs in dodgr.items()}
    triangles = 0
    for p, out_p in dodgr.items():
        for i, q in enumerate(out_p):
            out_q = out_sets[q]
            for r in out_p[i + 1 :]:
                if r in out_q:
                    triangles += 1
    return GraphSummary(
        name=graph_name,
        num_vertices=len(adjacency),
        num_directed_edges=sum(len(neigh) for neigh in adjacency.values()),
        num_triangles=triangles,
        max_degree=max((len(neigh) for neigh in adjacency.values()), default=0),
        max_dodgr_out_degree=max((len(nbrs) for nbrs in dodgr.values()), default=0),
        wedge_count=sum(len(nbrs) * (len(nbrs) - 1) // 2 for nbrs in dodgr.values()),
    )


def summarize_distributed(
    graph: DistributedGraph,
    dodgr: Optional[DODGraph] = None,
    triangle_count: Optional[int] = None,
    name: Optional[str] = None,
) -> GraphSummary:
    """Compute a Table 1 row from distributed structures.

    ``triangle_count`` may be supplied (e.g. from a TriPoll run) to avoid a
    serial recount; otherwise the serial oracle runs over the exported edges.
    """
    if dodgr is None:
        dodgr = DODGraph.build(graph, mode="bulk")
    if triangle_count is None:
        triangle_count = serial_triangle_count(list(graph.edges()))
    return GraphSummary(
        name=name or graph.name,
        num_vertices=graph.num_vertices(),
        num_directed_edges=graph.num_directed_edges(),
        num_triangles=triangle_count,
        max_degree=graph.max_degree(),
        max_dodgr_out_degree=dodgr.max_out_degree(),
        wedge_count=dodgr.wedge_count(),
    )
