"""Shared helpers for the columnar (array-native) construction pipeline.

The vectorized builders (`DistributedGraph.from_columns`,
`DODGraph._build_bulk_vectorized`) assemble per-vertex records from sorted
half-edge streams.  Their grouping step — find runs of equal keys in the
sorted columns — encodes the bit-identical insertion-order contract, so it
lives here once instead of being hand-rolled per call site.
"""

from __future__ import annotations

from typing import Any, List, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

__all__ = ["group_slices"]


def group_slices(*key_columns: Any) -> List[Tuple[int, int]]:
    """Contiguous runs of equal keys in pre-sorted parallel columns.

    Returns ``[(start, end), ...]`` slices such that every row in a slice
    has identical values across all ``key_columns`` (a run ends when *any*
    column changes).  Columns must already be grouped (e.g. via
    ``np.lexsort``); boundaries come from one vectorized ``diff`` instead of
    per-element Python comparisons.
    """
    first = key_columns[0]
    count = len(first)
    if count == 0:
        return []
    if _np is None:
        slices: List[Tuple[int, int]] = []
        start = 0
        for i in range(1, count):
            if any(col[i] != col[i - 1] for col in key_columns):
                slices.append((start, i))
                start = i
        slices.append((start, count))
        return slices
    change = None
    for column in key_columns:
        delta = _np.diff(_np.asarray(column)) != 0
        change = delta if change is None else (change | delta)
    cuts = [0] + (_np.flatnonzero(change) + 1).tolist() + [count]
    return list(zip(cuts[:-1], cuts[1:]))
