"""Pearce-style distributed triangle counting baseline.

Reimplementation (on the simulated runtime) of the algorithmic skeleton of
Pearce, "Triangle counting for scale-free graphs at scale in distributed
memory" (HPEC 2017) and its follow-up [41] — the system the paper reports as
the only other code able to count triangles on the 224-billion-edge Web Data
Commons graph:

1. **Degree-1 pruning** — iterative rounds removing vertices of degree one
   (they cannot participate in triangles); each removal notifies the single
   neighbour's owner so its degree drops too.
2. **Degree ordering** — the remaining graph is oriented low-to-high degree
   (the same DODGr orientation TriPoll uses).
3. **Per-wedge closure queries** — for every wedge (p; q, r) with
   ``q <+ r`` the owner of ``q`` is asked whether the closing edge (q, r)
   exists.  Unlike TriPoll's batched suffix pushes, each wedge is its own
   query message, so the number of RPCs equals |W+| — the buffering layer
   aggregates them on the wire, but the per-wedge envelope (repeated q, no
   amortisation of the pivot's metadata) costs more bytes per wedge than the
   suffix-push formulation.  No metadata is carried: this baseline counts
   only.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..graph.degree import order_key
from ..graph.distributed_graph import DistributedGraph
from ..core.results import SurveyReport

__all__ = ["pearce_triangle_count"]

PRUNE_PHASE = "prune"
WEDGE_PHASE = "wedge_check"


def pearce_triangle_count(
    graph: DistributedGraph,
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    max_prune_rounds: int = 50,
) -> SurveyReport:
    """Count triangles with the Pearce-style prune + wedge-query algorithm.

    Parameters
    ----------
    graph:
        The decorated undirected input graph (metadata is ignored — this
        baseline counts only).
    reset_stats:
        Clear the world's counters first so the report covers only this run.
    graph_name:
        Name recorded in the returned report (defaults to ``graph.name``).
    max_prune_rounds:
        Upper bound on degree-1 pruning rounds; pruning also stops at the
        first round that removes nothing.

    Returns a :class:`~repro.core.results.SurveyReport` with the ``prune``
    and ``wedge_check`` phase breakdown used by the Table 2 comparison.
    """
    world = graph.world
    if reset_stats:
        world.reset_stats()

    # Local working copies of the adjacency (pruning mutates them).
    working: List[Dict[Hashable, Set[Hashable]]] = []
    for rank in range(world.nranks):
        local: Dict[Hashable, Set[Hashable]] = {}
        for vertex, record in graph.local_vertices(rank):
            local[vertex] = set(record["adj"].keys())
        working.append(local)

    removed: List[Set[Hashable]] = [set() for _ in range(world.nranks)]
    triangle_counts: List[int] = [0] * world.nranks

    def _remove_neighbor_handler(ctx, vertex: Hashable, removed_neighbor: Hashable) -> None:
        adjacency = working[ctx.rank].get(vertex)
        if adjacency is not None:
            adjacency.discard(removed_neighbor)

    def _closure_query_handler(ctx, q: Hashable, r: Hashable) -> None:
        ctx.add_counter("wedge_checks", 1)
        ctx.add_compute(1)
        adjacency = working[ctx.rank].get(q)
        if adjacency is not None and r in adjacency:
            triangle_counts[ctx.rank] += 1
            ctx.add_counter("triangles_found", 1)

    h_remove = world.register_handler(_remove_neighbor_handler)
    h_query = world.register_handler(_closure_query_handler)

    host_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1: iterative degree-1 pruning.
    # ------------------------------------------------------------------
    world.begin_phase(PRUNE_PHASE)
    for _round in range(max_prune_rounds):
        any_removed = False
        for ctx in world.ranks:
            local = working[ctx.rank]
            to_remove = [v for v, neigh in local.items() if len(neigh) == 1]
            for vertex in to_remove:
                neighbour = next(iter(local[vertex]))
                ctx.async_call(graph.owner(neighbour), h_remove, neighbour, vertex)
                del local[vertex]
                removed[ctx.rank].add(vertex)
                any_removed = True
        world.barrier()
        if not any_removed:
            break

    # ------------------------------------------------------------------
    # Phase 2: degree ordering + per-wedge closure queries.
    # The ordering uses the *pruned* degrees, mirroring the preprocessing
    # step of the original system.
    # ------------------------------------------------------------------
    world.begin_phase(WEDGE_PHASE)
    # Degrees of surviving vertices are needed to orient edges; the original
    # system exchanges them during preprocessing — here each rank asks the
    # owner for the degree of every neighbour it still references.  To keep
    # the message pattern simple we gather the degree table driver-side and
    # charge a broadcast-equivalent volume per rank.
    degree_table: Dict[Hashable, int] = {}
    for rank in range(world.nranks):
        for vertex, neighbours in working[rank].items():
            degree_table[vertex] = len(neighbours)

    for ctx in world.ranks:
        local = working[ctx.rank]
        for p, neighbours in local.items():
            key_p = order_key(p, degree_table.get(p, 0))
            out = sorted(
                (v for v in neighbours if key_p < order_key(v, degree_table.get(v, 0))),
                key=lambda v: order_key(v, degree_table.get(v, 0)),
            )
            for i in range(len(out) - 1):
                q = out[i]
                owner_q = graph.owner(q)
                for r in out[i + 1 :]:
                    ctx.async_call(owner_q, h_query, q, r)
    world.barrier()

    host_seconds = time.perf_counter() - host_start
    phases = [PRUNE_PHASE, WEDGE_PHASE]
    simulated = world.simulated_time(phases=phases)
    report = SurveyReport.from_world_stats(
        algorithm="pearce",
        graph_name=graph_name or graph.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )
    report.triangles = sum(triangle_counts)
    return report
