"""Tom & Karypis-style 2D triangle counting baseline.

Reimplementation (on the simulated runtime) of the algorithmic skeleton of
"A 2D Parallel Triangle Counting Algorithm for Distributed-Memory
Architectures" (ICPP 2019): the degree-ordered adjacency matrix A is
partitioned over a sqrt(P) x sqrt(P) process grid, and the count is the
number of nonzeros of (A · A) masked by A, computed block-wise like Cannon's
matrix multiplication — process (i, j) accumulates contributions from
A(i, k) · A(k, j) for every k, receiving the row and column blocks it does
not own as bulk messages.

Characteristics this reproduces faithfully:

* requires a perfect-square number of ranks (the paper notes this constraint
  when choosing 1024-core runs for Table 2);
* communication is a small number of very large block transfers — total
  volume O(|E| · sqrt(P)) — instead of per-wedge traffic, which is why it
  achieves the best raw throughput on mid-sized social graphs but loses
  ground as P grows;
* no metadata support: this is a counting-only system.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..graph.degree import order_key
from ..graph.distributed_graph import DistributedGraph
from ..runtime.world import stable_hash
from ..core.results import SurveyReport

__all__ = ["tom2d_triangle_count", "is_perfect_square"]

EXCHANGE_PHASE = "block_exchange"
MULTIPLY_PHASE = "block_multiply"


def is_perfect_square(value: int) -> bool:
    """True when ``value`` is a perfect square (the 2D grid constraint)."""
    root = math.isqrt(value)
    return root * root == value


def _vertex_group(vertex: Hashable, grid: int) -> int:
    """Row/column group of a vertex on the sqrt(P) x sqrt(P) process grid."""
    return stable_hash(("tom2d", vertex)) % grid


def tom2d_triangle_count(
    graph: DistributedGraph,
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
) -> SurveyReport:
    """Count triangles with the 2D block algorithm.

    Parameters
    ----------
    graph:
        The decorated undirected input graph (metadata is ignored — this
        baseline counts only).
    reset_stats:
        Clear the world's counters first so the report covers only this run.
    graph_name:
        Name recorded in the returned report (defaults to ``graph.name``).

    Returns a :class:`~repro.core.results.SurveyReport` with the
    ``block_exchange`` / ``block_multiply`` phase breakdown.  Raises
    ``ValueError`` if the world size is not a perfect square.
    """
    world = graph.world
    nranks = world.nranks
    if not is_perfect_square(nranks):
        raise ValueError(
            f"the 2D algorithm requires a perfect-square number of ranks, got {nranks}"
        )
    grid = math.isqrt(nranks)
    if reset_stats:
        world.reset_stats()

    def block_rank(i: int, j: int) -> int:
        return i * grid + j

    # ------------------------------------------------------------------
    # Build the degree-ordered directed edge blocks A(i, j).  In the real
    # system this is the (re)distribution step of the input; edges move from
    # the vertex-partitioned input graph to their block owner.
    # ------------------------------------------------------------------
    degrees: Dict[Hashable, int] = graph.degrees()
    keys = {v: order_key(v, d) for v, d in degrees.items()}

    blocks: List[List[Tuple[Hashable, Hashable]]] = [[] for _ in range(nranks)]
    for rank in range(world.nranks):
        for u, record in graph.local_vertices(rank):
            ku = keys[u]
            for v in record["adj"]:
                if ku < keys[v]:
                    i = _vertex_group(u, grid)
                    j = _vertex_group(v, grid)
                    blocks[block_rank(i, j)].append((u, v))

    triangle_counts = [0] * nranks
    # Received blocks per destination rank, keyed by ("row"/"col", k).
    received: List[Dict[Tuple[str, int], List[Tuple[Hashable, Hashable]]]] = [
        {} for _ in range(nranks)
    ]

    def _deliver_block_handler(ctx, kind: str, k: int, edges: List[Tuple[Hashable, Hashable]]) -> None:
        received[ctx.rank][(kind, k)] = edges

    h_deliver = world.register_handler(_deliver_block_handler)

    host_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1: block exchange.  Process (i, j) needs A(i, k) (its row) and
    # A(k, j) (its column) for every k; each block owner ships its block to
    # the 2*(grid-1) processes that need it.
    # ------------------------------------------------------------------
    world.begin_phase(EXCHANGE_PHASE)
    for i in range(grid):
        for k in range(grid):
            owner_ctx = world.ranks[block_rank(i, k)]
            block_edges = blocks[block_rank(i, k)]
            for j in range(grid):
                dest = block_rank(i, j)
                if dest == owner_ctx.rank:
                    received[dest][("row", k)] = block_edges
                else:
                    owner_ctx.async_call(dest, h_deliver, "row", k, block_edges)
    # Column shipment: A(k, j) goes to every process (i, j) in column j.
    for k in range(grid):
        for j in range(grid):
            owner_ctx = world.ranks[block_rank(k, j)]
            block_edges = blocks[block_rank(k, j)]
            for i in range(grid):
                dest = block_rank(i, j)
                if dest == owner_ctx.rank:
                    received[dest][("col", k)] = block_edges
                else:
                    owner_ctx.async_call(dest, h_deliver, "col", k, block_edges)
    world.barrier()

    # ------------------------------------------------------------------
    # Phase 2: local block multiplication masked by the local block.
    # Process (i, j) counts, for every local edge (p, r) in A(i, j), the
    # number of x with (p, x) in A(i, k) and (x, r) in A(k, j).
    # ------------------------------------------------------------------
    world.begin_phase(MULTIPLY_PHASE)
    for i in range(grid):
        for j in range(grid):
            rank_id = block_rank(i, j)
            ctx = world.ranks[rank_id]
            local_mask: Set[Tuple[Hashable, Hashable]] = set(blocks[rank_id])
            if not local_mask:
                continue
            for k in range(grid):
                row_block = received[rank_id].get(("row", k), [])
                col_block = received[rank_id].get(("col", k), [])
                if not row_block or not col_block:
                    continue
                # Index the row block by its target x: x -> [p, ...]
                by_target: Dict[Hashable, List[Hashable]] = {}
                for p, x in row_block:
                    by_target.setdefault(x, []).append(p)
                for x, r in col_block:
                    sources = by_target.get(x)
                    if not sources:
                        ctx.add_compute(1)
                        continue
                    for p in sources:
                        ctx.add_compute(1)
                        ctx.add_counter("wedge_checks", 1)
                        if (p, r) in local_mask:
                            triangle_counts[rank_id] += 1
                            ctx.add_counter("triangles_found", 1)
    world.barrier()

    host_seconds = time.perf_counter() - host_start
    phases = [EXCHANGE_PHASE, MULTIPLY_PHASE]
    simulated = world.simulated_time(phases=phases)
    report = SurveyReport.from_world_stats(
        algorithm="tom2d",
        graph_name=graph_name or graph.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )
    report.triangles = sum(triangle_counts)
    return report
