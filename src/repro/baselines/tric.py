"""TriC-style edge-centric triangle counting baseline.

Reimplementation (on the simulated runtime) of the algorithmic skeleton of
TriC (Ghosh & Halappanavar, HPEC 2020 Graph Challenge): edges are spread
across ranks in *edge-balanced* partitions and triangles are identified by
per-edge enumeration — for every owned edge (u, v) the rank obtains the
adjacency lists of both endpoints from their (vertex-partitioned) owners and
intersects them.

Because adjacency lists are shipped once per incident edge rather than once
per rank, the communication volume is far higher than either TriPoll
formulation; combined with the extra state kept per in-flight edge this is
what makes the baseline the slowest (and most memory-hungry) entry of
Table 2, which is exactly the behaviour the published numbers show (minutes
where TriPoll needs seconds, out-of-memory on Twitter).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..graph.degree import order_key
from ..graph.distributed_graph import DistributedGraph
from ..core.results import SurveyReport

__all__ = ["tric_triangle_count"]

REQUEST_PHASE = "adjacency_request"
DELIVER_PHASE = "adjacency_deliver"
INTERSECT_PHASE = "edge_intersect"


def tric_triangle_count(
    graph: DistributedGraph,
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
) -> SurveyReport:
    """Count triangles with the TriC-style per-edge enumeration.

    Parameters
    ----------
    graph:
        The decorated undirected input graph (metadata is ignored — this
        baseline counts only).
    reset_stats:
        Clear the world's counters first so the report covers only this run.
    graph_name:
        Name recorded in the returned report (defaults to ``graph.name``).

    Returns a :class:`~repro.core.results.SurveyReport` whose
    ``adjacency_request`` / ``edge_intersect`` phases carry the Table 2
    communication breakdown.
    """
    world = graph.world
    nranks = world.nranks
    if reset_stats:
        world.reset_stats()

    degrees: Dict[Hashable, int] = graph.degrees()
    keys = {v: order_key(v, d) for v, d in degrees.items()}

    # Degree-ordered out-adjacency, stored at the vertex owner (the structure
    # adjacency requests are answered from).
    out_adjacency: List[Dict[Hashable, List[Hashable]]] = [dict() for _ in range(nranks)]
    for rank in range(nranks):
        for u, record in graph.local_vertices(rank):
            ku = keys[u]
            out_adjacency[rank][u] = sorted(
                (v for v in record["adj"] if ku < keys[v]), key=lambda v: keys[v]
            )

    # Edge-balanced partition: oriented edges dealt round-robin to ranks.
    edge_partitions: List[List[Tuple[Hashable, Hashable]]] = [[] for _ in range(nranks)]
    next_rank = 0
    for rank in range(nranks):
        for u, adjacency in out_adjacency[rank].items():
            for v in adjacency:
                edge_partitions[next_rank].append((u, v))
                next_rank = (next_rank + 1) % nranks

    # Per-rank in-flight state: edge -> {vertex: adjacency list}
    pending: List[Dict[Tuple[Hashable, Hashable], Dict[Hashable, List[Hashable]]]] = [
        dict() for _ in range(nranks)
    ]
    triangle_counts = [0] * nranks

    def _request_handler(ctx, vertex: Hashable, edge: Tuple[Hashable, Hashable], requester: int) -> None:
        adjacency = out_adjacency[ctx.rank].get(vertex, [])
        ctx.async_call(requester, h_deliver, vertex, edge, adjacency)

    def _deliver_handler(ctx, vertex: Hashable, edge: Tuple[Hashable, Hashable], adjacency: List[Hashable]) -> None:
        pending[ctx.rank].setdefault(tuple(edge), {})[vertex] = adjacency

    h_request = world.register_handler(_request_handler)
    h_deliver = world.register_handler(_deliver_handler)

    host_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1: every edge owner requests both endpoint adjacency lists.
    # ------------------------------------------------------------------
    world.begin_phase(REQUEST_PHASE)
    for ctx in world.ranks:
        for (u, v) in edge_partitions[ctx.rank]:
            ctx.async_call(graph.owner(u), h_request, u, (u, v), ctx.rank)
            ctx.async_call(graph.owner(v), h_request, v, (u, v), ctx.rank)
    world.barrier()

    # The deliveries triggered by the requests complete inside the same
    # barrier (fire-and-forget chains run to quiescence), so by now every
    # edge owner holds both adjacency lists.  The phase split below exists to
    # attribute intersection work separately from the traffic.

    # ------------------------------------------------------------------
    # Phase 2: per-edge intersection of the two endpoint adjacency lists.
    # ------------------------------------------------------------------
    world.begin_phase(INTERSECT_PHASE)
    for ctx in world.ranks:
        rank = ctx.rank
        for (u, v) in edge_partitions[rank]:
            lists = pending[rank].get((u, v))
            if lists is None:
                continue
            adj_u = lists.get(u, [])
            adj_v = set(lists.get(v, []))
            ctx.add_counter("wedge_checks", len(adj_u))
            for candidate in adj_u:
                ctx.add_compute(1)
                if candidate in adj_v:
                    triangle_counts[rank] += 1
                    ctx.add_counter("triangles_found", 1)
    world.barrier()

    host_seconds = time.perf_counter() - host_start
    phases = [REQUEST_PHASE, INTERSECT_PHASE]
    simulated = world.simulated_time(phases=phases)
    report = SurveyReport.from_world_stats(
        algorithm="tric",
        graph_name=graph_name or graph.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )
    report.triangles = sum(triangle_counts)
    return report
