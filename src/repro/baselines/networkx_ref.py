"""networkx-based reference implementations (test oracles).

These wrappers are *not* distributed algorithms; they exist so every
distributed implementation in this repository can be validated against an
independent, widely-used library on small graphs.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Tuple

import networkx as nx

__all__ = [
    "triangle_count_nx",
    "local_triangle_counts_nx",
    "clustering_coefficients_nx",
    "average_clustering_nx",
]

Edges = Iterable[Tuple[Hashable, Hashable]] | Iterable[Tuple[Hashable, Hashable, Any]]


def _to_nx(edges: Edges) -> nx.Graph:
    graph = nx.Graph()
    for edge in edges:
        u, v = edge[0], edge[1]
        if u != v:
            graph.add_edge(u, v)
    return graph


def triangle_count_nx(edges: Edges) -> int:
    """Global triangle count using networkx."""
    graph = _to_nx(edges)
    return sum(nx.triangles(graph).values()) // 3


def local_triangle_counts_nx(edges: Edges) -> Dict[Hashable, int]:
    """Per-vertex triangle participation using networkx."""
    return dict(nx.triangles(_to_nx(edges)))


def clustering_coefficients_nx(edges: Edges) -> Dict[Hashable, float]:
    """Per-vertex local clustering coefficients using networkx."""
    return dict(nx.clustering(_to_nx(edges)))


def average_clustering_nx(edges: Edges) -> float:
    """Average local clustering coefficient using networkx (0.0 if empty)."""
    graph = _to_nx(edges)
    if graph.number_of_nodes() == 0:
        return 0.0
    return nx.average_clustering(graph)
