"""Serial triangle counting baselines (single rank, no communication).

These are the reference algorithms every distributed implementation is
validated against, and the node-iterator family the related-work section
traces the lineage of distributed triangle counting back to:

* :func:`node_iterator_count` — the classic node-iterator: for every vertex,
  test every pair of neighbours for adjacency.
* :func:`forward_count` — the degree-ordered "forward" algorithm (compact
  version of what every modern system, including TriPoll, parallelises).
* :func:`edge_iterator_count` — intersect the neighbourhoods of the two
  endpoints of every edge, divide by three.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Set, Tuple

from ..graph.degree import order_key
from ..graph.properties import build_adjacency

__all__ = [
    "node_iterator_count",
    "forward_count",
    "edge_iterator_count",
    "local_triangle_counts",
]

Edges = Iterable[Tuple[Hashable, Hashable]] | Iterable[Tuple[Hashable, Hashable, Any]]


def node_iterator_count(edges: Edges) -> int:
    """Count triangles by checking all neighbour pairs of every vertex.

    Each triangle is seen three times (once per vertex), so the total is
    divided by three.  O(sum_v d(v)^2) — only suitable as a small-graph
    oracle.
    """
    adjacency = build_adjacency(edges)
    count = 0
    for _v, neighbours in adjacency.items():
        ordered = list(neighbours)
        for i in range(len(ordered)):
            adj_i = adjacency[ordered[i]]
            for j in range(i + 1, len(ordered)):
                if ordered[j] in adj_i:
                    count += 1
    return count // 3


def forward_count(edges: Edges) -> int:
    """Degree-ordered forward algorithm: each triangle counted exactly once."""
    adjacency = build_adjacency(edges)
    keys = {v: order_key(v, len(neigh)) for v, neigh in adjacency.items()}
    out: Dict[Hashable, List[Hashable]] = {
        v: sorted((u for u in neigh if keys[v] < keys[u]), key=lambda u: keys[u])
        for v, neigh in adjacency.items()
    }
    out_sets: Dict[Hashable, Set[Hashable]] = {v: set(nbrs) for v, nbrs in out.items()}
    count = 0
    for p, out_p in out.items():
        for i, q in enumerate(out_p):
            out_q = out_sets[q]
            for r in out_p[i + 1 :]:
                if r in out_q:
                    count += 1
    return count


def edge_iterator_count(edges: Edges) -> int:
    """Intersect endpoint neighbourhoods per edge; each triangle seen three times."""
    adjacency = build_adjacency(edges)
    seen = set()
    count = 0
    for u, neighbours in adjacency.items():
        for v in neighbours:
            key = (u, v) if repr(u) <= repr(v) else (v, u)
            if key in seen:
                continue
            seen.add(key)
            count += len(adjacency[u] & adjacency[v])
    return count // 3


def local_triangle_counts(edges: Edges) -> Dict[Hashable, int]:
    """Per-vertex triangle participation counts (serial oracle)."""
    adjacency = build_adjacency(edges)
    keys = {v: order_key(v, len(neigh)) for v, neigh in adjacency.items()}
    out = {
        v: sorted((u for u in neigh if keys[v] < keys[u]), key=lambda u: keys[u])
        for v, neigh in adjacency.items()
    }
    out_sets = {v: set(nbrs) for v, nbrs in out.items()}
    counts: Dict[Hashable, int] = {v: 0 for v in adjacency}
    for p, out_p in out.items():
        for i, q in enumerate(out_p):
            out_q = out_sets[q]
            for r in out_p[i + 1 :]:
                if r in out_q:
                    counts[p] += 1
                    counts[q] += 1
                    counts[r] += 1
    return counts
