"""Baseline triangle counting implementations used for the Table 2 comparison.

All distributed baselines run on the same simulated runtime as TriPoll so
the comparison isolates *algorithmic* differences (communication pattern,
work distribution) rather than implementation constants.
"""

from .networkx_ref import (
    average_clustering_nx,
    clustering_coefficients_nx,
    local_triangle_counts_nx,
    triangle_count_nx,
)
from .pearce import pearce_triangle_count
from .serial import (
    edge_iterator_count,
    forward_count,
    local_triangle_counts,
    node_iterator_count,
)
from .tom2d import is_perfect_square, tom2d_triangle_count
from .tric import tric_triangle_count

__all__ = [
    "pearce_triangle_count",
    "tom2d_triangle_count",
    "tric_triangle_count",
    "is_perfect_square",
    "node_iterator_count",
    "forward_count",
    "edge_iterator_count",
    "local_triangle_counts",
    "triangle_count_nx",
    "local_triangle_counts_nx",
    "clustering_coefficients_nx",
    "average_clustering_nx",
]
