"""Survey result objects: what a TriPoll run reports back to the driver.

TriPoll itself "has no output in the traditional sense" — results live in
whatever state the user's callback mutates.  What the *framework* does report
(and what the paper's evaluation tables are made of) is execution telemetry:
per-phase simulated runtime, communication volume, wedge checks, triangles
identified, and pull statistics.  :class:`SurveyReport` packages that
telemetry for one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.network_model import SimulatedTime
from ..runtime.stats import PhaseStats, WorldStats

__all__ = ["SurveyReport"]


@dataclass
class SurveyReport:
    """Telemetry of one triangle survey execution."""

    #: "push" (Push-Only) or "push_pull"
    algorithm: str
    #: dataset / graph name the survey ran on
    graph_name: str
    #: number of simulated compute nodes (ranks)
    nranks: int
    #: phase names in execution order
    phases: List[str]
    #: simulated wall-clock time (cost model applied to the measured counters)
    simulated: SimulatedTime
    #: triangles identified across all ranks
    triangles: int
    #: wedge checks (candidate comparisons requested) across all ranks
    wedge_checks: int
    #: total bytes of aggregated wire messages (the paper's communication volume)
    communication_bytes: int
    #: total number of aggregated wire messages
    wire_messages: int
    #: number of adjacency lists pulled, summed over ranks (0 for Push-Only)
    vertices_pulled: int = 0
    #: per-phase aggregate counters
    phase_stats: Dict[str, PhaseStats] = field(default_factory=dict)
    #: wall-clock seconds the simulation itself took (not the simulated time)
    host_seconds: float = 0.0

    # ------------------------------------------------------------------
    @property
    def simulated_seconds(self) -> float:
        return self.simulated.total_seconds

    @property
    def pulls_per_rank(self) -> float:
        return self.vertices_pulled / self.nranks if self.nranks else 0.0

    def phase_seconds(self, name: str) -> float:
        return self.simulated.phase_seconds(name)

    def phase_breakdown(self) -> Dict[str, float]:
        return {name: self.simulated.phase_seconds(name) for name in self.phases}

    def communication_gigabytes(self) -> float:
        return self.communication_bytes / 1e9

    # ------------------------------------------------------------------
    @classmethod
    def from_world_stats(
        cls,
        algorithm: str,
        graph_name: str,
        world_stats: WorldStats,
        simulated: SimulatedTime,
        phases: List[str],
        host_seconds: float = 0.0,
    ) -> "SurveyReport":
        """Build a report from the counters accumulated during a run."""
        total = PhaseStats()
        phase_stats: Dict[str, PhaseStats] = {}
        for name in phases:
            stats = world_stats.phase_total(name)
            phase_stats[name] = stats
            total.merge(stats)
        return cls(
            algorithm=algorithm,
            graph_name=graph_name,
            nranks=world_stats.nranks,
            phases=list(phases),
            simulated=simulated,
            triangles=total.app_counters.get("triangles_found", 0),
            wedge_checks=total.app_counters.get("wedge_checks", 0),
            communication_bytes=total.wire_bytes,
            wire_messages=total.wire_messages,
            vertices_pulled=total.app_counters.get("vertices_pulled", 0),
            phase_stats=phase_stats,
            host_seconds=host_seconds,
        )

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict suitable for the reporting tables."""
        row: Dict[str, object] = {
            "graph": self.graph_name,
            "algorithm": self.algorithm,
            "nodes": self.nranks,
            "triangles": self.triangles,
            "wedge_checks": self.wedge_checks,
            "sim_seconds": self.simulated_seconds,
            "comm_bytes": self.communication_bytes,
            "wire_messages": self.wire_messages,
            "vertices_pulled": self.vertices_pulled,
        }
        for name in self.phases:
            row[f"sim_seconds[{name}]"] = self.phase_seconds(name)
        return row
