"""Approximate triangle counting by edge sparsification (DOULION-style).

The paper's introduction notes that "techniques that approximate triangle
counts suffice for an application" in many cases, and positions TriPoll for
the cases where they do not.  For completeness this module provides the
classic sparsification estimator on top of the same survey machinery: keep
each undirected edge independently with probability ``p``, count triangles in
the sparsified graph exactly with TriPoll, and scale by ``1 / p^3``.  The
estimator is unbiased; its variance shrinks as ``p`` grows and as the triangle
count grows.

Because the sparsified survey is a full TriPoll run, it inherits the
callback interface: callbacks can also be surveyed approximately, with each
surveyed triangle representative of ``1/p^3`` real ones in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Tuple

import numpy as np

from ..graph.distributed_graph import DistributedGraph
from ..graph.dodgr import DODGraph
from ..runtime.world import World
from .push_pull import triangle_survey_push_pull
from .results import SurveyReport
from .survey import TriangleCallback, triangle_survey_push

__all__ = [
    "ApproximateCount",
    "SurvivorEstimate",
    "approximate_triangle_count",
    "sparsify_graph",
    "survivor_triangle_estimate",
]


@dataclass
class ApproximateCount:
    """Result of one sparsified counting run."""

    #: estimated triangle count of the original graph (sampled count / p^3)
    estimate: float
    #: exact triangle count of the sparsified graph
    sampled_triangles: int
    #: edge-keeping probability used
    probability: float
    #: edges kept / edges in the original graph
    kept_edges: int
    original_edges: int
    #: telemetry of the survey over the sparsified graph
    report: SurveyReport

    @property
    def scale_factor(self) -> float:
        return 1.0 / self.probability**3

    @property
    def stderr(self) -> float:
        """Binomial-thinning standard error of :attr:`estimate` (heuristic).

        Each of the ``~estimate`` true triangles keeps all three edges with
        probability ``p^3``, so the scaled-up count carries a standard
        error of ``sqrt(estimate * (1/p^3 - 1))`` — the same heuristic as
        :attr:`SurvivorEstimate.stderr`, here over edge sampling.  (The
        DOULION variance also has cross terms from triangles sharing
        edges; this is the independent-thinning floor, exact at ``p = 1``.)
        """
        p3 = self.probability**3
        return float(np.sqrt(max(self.estimate, 0.0) * (1.0 / p3 - 1.0)))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """``z``-sigma interval around the estimate (clamped at zero)."""
        spread = z * self.stderr
        return (max(0.0, self.estimate - spread), self.estimate + spread)

    def relative_error(self, exact: int) -> float:
        """|estimate - exact| / exact (for evaluation against a known truth)."""
        if exact == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - exact) / exact


def sparsify_graph(
    graph: DistributedGraph,
    probability: float,
    seed: int = 0,
    name: Optional[str] = None,
) -> DistributedGraph:
    """Keep each undirected edge of ``graph`` independently with ``probability``.

    Vertex metadata is preserved for every vertex (including those that lose
    all their edges); edge metadata is carried over for surviving edges.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError("probability must be in (0, 1]")
    world = graph.world
    out = DistributedGraph(
        world,
        partitioner=graph.partitioner,
        name=name or f"{graph.name}.sparsified",
        default_vertex_meta=graph.default_vertex_meta,
    )
    rng = np.random.default_rng(seed)
    for rank in range(world.nranks):
        for vertex, record in graph.local_vertices(rank):
            out.add_vertex(vertex, record["meta"])
    for u, v, meta in graph.edges():
        if rng.random() < probability:
            out.add_edge(u, v, meta)
    return out


def approximate_triangle_count(
    graph: DistributedGraph,
    probability: float = 0.3,
    seed: int = 0,
    algorithm: str = "push_pull",
    callback: Optional[TriangleCallback] = None,
    graph_name: Optional[str] = None,
) -> ApproximateCount:
    """Estimate the triangle count of ``graph`` by edge sparsification.

    Parameters
    ----------
    probability:
        Edge keeping probability ``p``; the estimate is the sampled count
        times ``1/p^3``.  ``p = 1`` degenerates to exact counting.
    callback:
        Optional survey callback run on the triangles of the *sparsified*
        graph (each surviving triangle stands for ``1/p^3`` originals in
        expectation).
    """
    sparsified = sparsify_graph(graph, probability, seed=seed)
    dodgr = DODGraph.build(sparsified, mode="bulk")
    if algorithm == "push":
        report = triangle_survey_push(dodgr, callback, graph_name=graph_name or graph.name)
    elif algorithm == "push_pull":
        report = triangle_survey_push_pull(dodgr, callback, graph_name=graph_name or graph.name)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    sampled = report.triangles
    return ApproximateCount(
        estimate=sampled / probability**3,
        sampled_triangles=sampled,
        probability=probability,
        kept_edges=sparsified.num_undirected_edges(),
        original_edges=graph.num_undirected_edges(),
        report=report,
    )


# ---------------------------------------------------------------------------
# Degraded surveys: estimate from the survivors of a permanent rank loss
# ---------------------------------------------------------------------------


@dataclass
class SurvivorEstimate:
    """Triangle estimate from the ranks that outlived a permanent crash.

    Losing rank ``r`` forever loses its vertex partition.  Hash
    partitioning assigns vertices (pseudo-)uniformly, so the surviving
    vertex set behaves like a uniform vertex sample of rate ``p`` — a
    triangle survives iff all three corners do, i.e. with probability
    ``~p^3`` — which makes the DOULION-style scale-up
    ``survivors / p^3`` the natural estimator, now over *vertex* instead of
    edge sampling.  The error bound is the matching binomial-thinning
    heuristic: each of the ``~estimate`` true triangles survives
    independently with probability ``p^3``, giving the scaled count a
    standard error of ``sqrt(estimate * (1/p^3 - 1))``.
    """

    #: estimated triangle count of the full graph
    estimate: float
    #: exact triangle count among the surviving partitions
    surviving_triangles: int
    #: fraction of vertices owned by surviving ranks
    survival_probability: float
    lost_ranks: Tuple[int, ...]
    surviving_vertices: int
    total_vertices: int
    #: telemetry of the survey over the survivor subgraph
    report: SurveyReport

    @property
    def scale_factor(self) -> float:
        return 1.0 / self.survival_probability**3

    @property
    def stderr(self) -> float:
        """Binomial-thinning standard error of :attr:`estimate` (heuristic)."""
        p3 = self.survival_probability**3
        return float(np.sqrt(max(self.estimate, 0.0) * (1.0 / p3 - 1.0)))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """``z``-sigma interval around the estimate (clamped at zero)."""
        spread = z * self.stderr
        return (max(0.0, self.estimate - spread), self.estimate + spread)

    def relative_error(self, exact: int) -> float:
        """|estimate - exact| / exact (for evaluation against a known truth)."""
        if exact == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - exact) / exact


def survivor_triangle_estimate(
    graph: DistributedGraph,
    lost_ranks: Iterable[int],
    algorithm: str = "push",
    graph_name: Optional[str] = None,
) -> SurvivorEstimate:
    """Estimate the triangle count of ``graph`` after permanently losing ranks.

    This is the graceful-degradation path of the checkpoint/restart layer
    (``core/engine/checkpoint.py``): when a crashed rank exceeds its restart
    budget (or the fault plan marks the crash unrecoverable), the survey
    routes here instead of failing.  The estimate surveys the *survivor
    subgraph* — every edge whose two endpoints live on surviving ranks — on a
    fresh world of the surviving size, then scales by ``1 / p^3`` where
    ``p`` is the surviving vertex fraction (see :class:`SurvivorEstimate`).
    """
    world = graph.world
    lost = {rank % world.nranks for rank in lost_ranks}
    if not lost:
        raise ValueError("survivor estimate requires at least one lost rank")
    if len(lost) >= world.nranks:
        raise ValueError("no surviving ranks to estimate from")
    survivor_world = World(world.nranks - len(lost))
    survivors = DistributedGraph(
        survivor_world, name=f"{graph.name}.survivors"
    )
    surviving_vertices: set = set()
    total_vertices = 0
    for rank in range(world.nranks):
        for vertex, record in graph.local_vertices(rank):
            total_vertices += 1
            if rank not in lost:
                surviving_vertices.add(vertex)
                survivors.add_vertex(vertex, record["meta"])
    if not surviving_vertices:
        raise ValueError("surviving ranks own no vertices")
    for u, v, meta in graph.edges():
        if u in surviving_vertices and v in surviving_vertices:
            survivors.add_edge(u, v, meta)
    dodgr = DODGraph.build(survivors, mode="bulk")
    name = graph_name or f"{graph.name}.survivors"
    if algorithm == "push":
        report = triangle_survey_push(dodgr, None, graph_name=name)
    elif algorithm == "push_pull":
        report = triangle_survey_push_pull(dodgr, None, graph_name=name)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    probability = len(surviving_vertices) / total_vertices
    return SurvivorEstimate(
        estimate=report.triangles / probability**3,
        surviving_triangles=report.triangles,
        survival_probability=probability,
        lost_ranks=tuple(sorted(lost)),
        surviving_vertices=len(surviving_vertices),
        total_vertices=total_vertices,
        report=report,
    )
