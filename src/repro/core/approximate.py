"""Approximate triangle counting by edge sparsification (DOULION-style).

The paper's introduction notes that "techniques that approximate triangle
counts suffice for an application" in many cases, and positions TriPoll for
the cases where they do not.  For completeness this module provides the
classic sparsification estimator on top of the same survey machinery: keep
each undirected edge independently with probability ``p``, count triangles in
the sparsified graph exactly with TriPoll, and scale by ``1 / p^3``.  The
estimator is unbiased; its variance shrinks as ``p`` grows and as the triangle
count grows.

Because the sparsified survey is a full TriPoll run, it inherits the
callback interface: callbacks can also be surveyed approximately, with each
surveyed triangle representative of ``1/p^3`` real ones in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

import numpy as np

from ..graph.distributed_graph import DistributedGraph
from ..graph.dodgr import DODGraph
from ..runtime.world import World
from .push_pull import triangle_survey_push_pull
from .results import SurveyReport
from .survey import TriangleCallback, triangle_survey_push

__all__ = ["ApproximateCount", "approximate_triangle_count", "sparsify_graph"]


@dataclass
class ApproximateCount:
    """Result of one sparsified counting run."""

    #: estimated triangle count of the original graph (sampled count / p^3)
    estimate: float
    #: exact triangle count of the sparsified graph
    sampled_triangles: int
    #: edge-keeping probability used
    probability: float
    #: edges kept / edges in the original graph
    kept_edges: int
    original_edges: int
    #: telemetry of the survey over the sparsified graph
    report: SurveyReport

    @property
    def scale_factor(self) -> float:
        return 1.0 / self.probability**3

    def relative_error(self, exact: int) -> float:
        """|estimate - exact| / exact (for evaluation against a known truth)."""
        if exact == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return abs(self.estimate - exact) / exact


def sparsify_graph(
    graph: DistributedGraph,
    probability: float,
    seed: int = 0,
    name: Optional[str] = None,
) -> DistributedGraph:
    """Keep each undirected edge of ``graph`` independently with ``probability``.

    Vertex metadata is preserved for every vertex (including those that lose
    all their edges); edge metadata is carried over for surviving edges.
    """
    if not 0.0 < probability <= 1.0:
        raise ValueError("probability must be in (0, 1]")
    world = graph.world
    out = DistributedGraph(
        world,
        partitioner=graph.partitioner,
        name=name or f"{graph.name}.sparsified",
        default_vertex_meta=graph.default_vertex_meta,
    )
    rng = np.random.default_rng(seed)
    for rank in range(world.nranks):
        for vertex, record in graph.local_vertices(rank):
            out.add_vertex(vertex, record["meta"])
    for u, v, meta in graph.edges():
        if rng.random() < probability:
            out.add_edge(u, v, meta)
    return out


def approximate_triangle_count(
    graph: DistributedGraph,
    probability: float = 0.3,
    seed: int = 0,
    algorithm: str = "push_pull",
    callback: Optional[TriangleCallback] = None,
    graph_name: Optional[str] = None,
) -> ApproximateCount:
    """Estimate the triangle count of ``graph`` by edge sparsification.

    Parameters
    ----------
    probability:
        Edge keeping probability ``p``; the estimate is the sampled count
        times ``1/p^3``.  ``p = 1`` degenerates to exact counting.
    callback:
        Optional survey callback run on the triangles of the *sparsified*
        graph (each surviving triangle stands for ``1/p^3`` originals in
        expectation).
    """
    sparsified = sparsify_graph(graph, probability, seed=seed)
    dodgr = DODGraph.build(sparsified, mode="bulk")
    if algorithm == "push":
        report = triangle_survey_push(dodgr, callback, graph_name=graph_name or graph.name)
    elif algorithm == "push_pull":
        report = triangle_survey_push_pull(dodgr, callback, graph_name=graph_name or graph.name)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    sampled = report.triangles
    return ApproximateCount(
        estimate=sampled / probability**3,
        sampled_triangles=sampled,
        probability=probability,
        kept_edges=sparsified.num_undirected_edges(),
        original_edges=graph.num_undirected_edges(),
        report=report,
    )
