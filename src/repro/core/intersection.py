"""Adjacency-list intersection kernels.

The basic unit of work in triangle identification is the wedge check:
given the pivot's candidate list (a suffix of ``Adj+_m(p)``) and the target
vertex's adjacency ``Adj+_m(q)``, find the common vertices ``r`` — each one
closes a triangle Δpqr.  The paper uses a merge-path intersection (both lists
are sorted by the ``<+`` degree order); the related-work section surveys the
two main alternatives, binary search and hashing, which are provided here as
well so the ablation benchmark can compare them on identical inputs.

Every kernel returns the list of matches *with the positions* of the match in
both inputs, because the caller needs the metadata stored alongside each
entry, and reports the number of elementary comparisons performed so the
simulated compute cost reflects the kernel actually used.

Batched kernels
---------------

The scalar kernels above process one wedge check per call.  The batched
engine (``triangle_survey(..., batched=True)``) coalesces every candidate
suffix destined to one target vertex into a single call: the suffixes are
concatenated into one flat key array with segment offsets (a ragged/CSR
layout), and :func:`merge_path_batch` / :func:`hash_batch` intersect *all*
segments against the shared adjacency in one vectorized pass.  The batch
kernels are defined to be drop-in aggregates of the scalar kernels: per
segment they produce exactly the matches the scalar kernel would, and their
``comparisons`` total is exactly the sum of the scalar kernels' counts, so
the simulated-cost accounting of a batched survey is identical to the legacy
per-wedge path.  A pure-Python fallback (used automatically when NumPy is
unavailable) loops the scalar kernels per segment.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

try:  # NumPy accelerates the batch kernels but is optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_python paths
    _np = None

__all__ = [
    "merge_path_intersection",
    "binary_search_intersection",
    "hash_intersection",
    "IntersectionResult",
    "INTERSECTION_KERNELS",
    "BatchIntersectionResult",
    "merge_path_batch",
    "hash_batch",
    "binary_search_batch",
    "BATCH_KERNELS",
    "RowAdjacency",
    "RowBatchResult",
    "merge_path_rows",
    "hash_rows",
    "binary_search_rows",
    "ROW_KERNELS",
    "KERNEL_TIERS",
    "KERNEL_TIER_FALLBACK",
    "ROW_KERNEL_TIERS",
    "BATCH_KERNEL_TIERS",
    "available_kernel_tiers",
    "resolve_kernel_tier",
    "row_kernel",
    "batch_kernel",
]

#: One match: (index into the candidate list, index into the adjacency list).
Match = Tuple[int, int]


class IntersectionResult:
    """Matches plus the comparison count of one intersection call."""

    __slots__ = ("matches", "comparisons")

    def __init__(self, matches: List[Match], comparisons: int) -> None:
        self.matches = matches
        self.comparisons = comparisons

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)


def merge_path_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Simultaneous traversal of two sorted lists (the paper's kernel).

    Both inputs must be sorted ascending by their respective key functions,
    and the keys must be drawn from the same total order (the ``<+`` order).
    Complexity O(len(candidates) + len(adjacency)).
    """
    matches: List[Match] = []
    comparisons = 0
    i = 0
    j = 0
    n_cand = len(candidates)
    n_adj = len(adjacency)
    while i < n_cand and j < n_adj:
        comparisons += 1
        ck = candidate_key(candidates[i])
        ak = adjacency_key(adjacency[j])
        if ck == ak:
            matches.append((i, j))
            i += 1
            j += 1
        elif ck < ak:
            i += 1
        else:
            j += 1
    return IntersectionResult(matches, comparisons)


def binary_search_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Binary-search each candidate in the (sorted) adjacency list.

    Complexity O(len(candidates) * log len(adjacency)); preferable when the
    candidate list is much shorter than the adjacency list (TriCore's choice
    on GPUs).
    """
    matches: List[Match] = []
    comparisons = 0
    adj_keys = [adjacency_key(entry) for entry in adjacency]
    for i, candidate in enumerate(candidates):
        ck = candidate_key(candidate)
        lo, hi = 0, len(adj_keys)
        while lo < hi:
            comparisons += 1
            mid = (lo + hi) // 2
            if adj_keys[mid] < ck:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(adj_keys):
            comparisons += 1
            if adj_keys[lo] == ck:
                matches.append((i, lo))
    return IntersectionResult(matches, comparisons)


def hash_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Hash the adjacency list, probe with each candidate (TRUST/H-Index style).

    Complexity O(len(candidates) + len(adjacency)); does not require either
    input to be sorted.
    """
    matches: List[Match] = []
    table = {}
    comparisons = 0
    for j, entry in enumerate(adjacency):
        table[adjacency_key(entry)] = j
        comparisons += 1
    for i, candidate in enumerate(candidates):
        comparisons += 1
        j = table.get(candidate_key(candidate))
        if j is not None:
            matches.append((i, j))
    return IntersectionResult(matches, comparisons)


#: Registry used by the survey engines and the ablation benchmark.
INTERSECTION_KERNELS = {
    "merge_path": merge_path_intersection,
    "binary_search": binary_search_intersection,
    "hash": hash_intersection,
}


# ---------------------------------------------------------------------------
# Batched kernels
# ---------------------------------------------------------------------------

#: One batched match: (segment index, index within the segment, adjacency index).
BatchMatch = Tuple[int, int, int]


class BatchIntersectionResult:
    """Matches plus the aggregate comparison count of one batched call.

    ``matches`` holds ``(segment, candidate_index, adjacency_index)`` triples
    in ascending segment order (and ascending candidate index within a
    segment) — the same per-segment order the scalar kernels produce.
    ``comparisons`` is exactly the sum the scalar kernel would have reported
    over one call per segment.
    """

    __slots__ = ("matches", "comparisons")

    def __init__(self, matches: List[BatchMatch], comparisons: int) -> None:
        self.matches = matches
        self.comparisons = comparisons

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)


def _check_offsets(candidate_keys: Sequence[int], offsets: Sequence[int]) -> None:
    if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(candidate_keys):
        raise ValueError(
            "offsets must start at 0 and end at len(candidate_keys); got "
            f"{offsets[0] if len(offsets) else None}..{offsets[-1] if len(offsets) else None} "
            f"for {len(candidate_keys)} keys"
        )


def _batch_via_scalar(
    kernel: Callable[..., IntersectionResult],
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Reference batch implementation: one scalar kernel call per segment.

    Doubles as the small-input fast path of the vectorized kernels: for tiny
    batches a plain Python merge beats the fixed per-call cost of the NumPy
    pipeline, and being the scalar reference it is contract-exact (identical
    matches and comparison counts) by construction.
    """
    _check_offsets(candidate_keys, offsets)
    matches: List[BatchMatch] = []
    comparisons = 0
    cand_list = (
        candidate_keys.tolist()
        if hasattr(candidate_keys, "tolist")
        else list(candidate_keys)
    )
    adjacency = (
        adjacency_keys.tolist()
        if hasattr(adjacency_keys, "tolist")
        else list(adjacency_keys)
    )
    for seg in range(len(offsets) - 1):
        lo, hi = int(offsets[seg]), int(offsets[seg + 1])
        result = kernel(cand_list[lo:hi], adjacency, _identity, _identity)
        comparisons += result.comparisons
        for cand_idx, adj_idx in result.matches:
            matches.append((seg, cand_idx, adj_idx))
    return BatchIntersectionResult(matches, comparisons)


#: Below this many total keys (candidates + adjacency) the vectorized batch
#: kernels route through :func:`_batch_via_scalar` — the fixed overhead of a
#: dozen NumPy calls exceeds a short Python merge, and small groups dominate
#: exactly the workloads (many distinct low-degree targets) where batching
#: wins the least.
_SCALAR_BATCH_CUTOFF = 96

#: The row kernels additionally require at most this many segments before
#: routing small inputs to the scalar path: a scalar merge costs one Python
#: kernel call *per segment*, so a many-segment call (the incremental
#: engine's sparse delta streams) amortizes the vectorized pipeline's fixed
#: overhead even when the candidate count alone would not.
_SCALAR_ROW_SEGMENT_CUTOFF = 4


def _identity(value: Any) -> Any:
    return value


def _segment_sums(mask: "Any", offsets: "Any") -> "Any":
    """Per-segment sums of a boolean/int array, robust to empty segments."""
    csum = _np.concatenate(([0], _np.cumsum(mask)))
    return csum[offsets[1:]] - csum[offsets[:-1]]


def _vector_matches(cand, offsets, adj):
    """Shared searchsorted match-finding for the vectorized batch kernels.

    Returns ``(matches, valid_mask)`` where ``valid_mask`` marks, per
    concatenated candidate position, whether it matched.  Requires the
    adjacency keys to be sorted and duplicate-free (guaranteed by the ``<+``
    total order) and each candidate segment to be sorted.
    """
    n_adj = adj.size
    if cand.size == 0 or n_adj == 0:
        return [], _np.zeros(cand.size, dtype=bool)
    pos = _np.searchsorted(adj, cand)
    clipped = _np.minimum(pos, n_adj - 1)
    valid = (pos < n_adj) & (adj[clipped] == cand)
    hits = _np.nonzero(valid)[0]
    segments = _np.searchsorted(offsets, hits, side="right") - 1
    cand_indices = hits - offsets[segments]
    adj_indices = pos[hits]
    matches = list(
        zip(segments.tolist(), cand_indices.tolist(), adj_indices.tolist())
    )
    return matches, valid


def merge_path_batch(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Intersect every candidate segment against one adjacency, merge-path cost.

    ``candidate_keys`` is the concatenation of per-wedge candidate key
    arrays; segment ``s`` occupies ``candidate_keys[offsets[s]:offsets[s+1]]``
    and must be sorted.  ``adjacency_keys`` is the shared sorted adjacency.
    Keys must be integers drawn from a total order in which equality implies
    vertex identity (the dense ``<+`` order ids of
    :class:`~repro.graph.dodgr.CSRAdjacency`).

    The comparison count replays what :func:`merge_path_intersection` would
    have charged per segment without walking the merge: each scalar merge
    performs ``consumed - matches`` comparisons, where ``consumed`` counts
    elements taken from either list before one side is exhausted — a
    closed form over searchsorted ranks.
    """
    if _np is None or len(candidate_keys) + len(adjacency_keys) <= _SCALAR_BATCH_CUTOFF:
        return _batch_via_scalar(
            merge_path_intersection, candidate_keys, offsets, adjacency_keys
        )
    cand = _np.asarray(candidate_keys, dtype=_np.int64)
    offs = _np.asarray(offsets, dtype=_np.int64)
    adj = _np.asarray(adjacency_keys, dtype=_np.int64)
    _check_offsets(cand, offs)
    matches, valid = _vector_matches(cand, offs, adj)
    n_adj = adj.size
    if cand.size == 0 or n_adj == 0:
        return BatchIntersectionResult(matches, 0)

    lengths = offs[1:] - offs[:-1]
    nonempty = lengths > 0
    matches_per_seg = _segment_sums(valid, offs)

    # Last candidate key per segment (dummy index 0 for empty segments).
    last_key = cand[_np.where(nonempty, offs[1:] - 1, 0)]
    adj_last = int(adj[-1])

    # Candidates exhaust first (last_key < adj_last): every candidate is
    # consumed, plus the adjacency prefix up to (and including, on a match)
    # the last candidate key.
    rank_of_last = _np.searchsorted(adj, last_key, side="left")
    last_in_adj = (rank_of_last < n_adj) & (
        adj[_np.minimum(rank_of_last, n_adj - 1)] == last_key
    )
    consumed_cand_side = lengths + rank_of_last + last_in_adj

    # Adjacency exhausts first (last_key > adj_last): the whole adjacency is
    # consumed, plus each segment's prefix up to the last adjacency key
    # (candidates <= adj_last, counted with one fused segment sum).
    consumed_adj_side = n_adj + _segment_sums(cand <= adj_last, offs)

    consumed = _np.where(
        last_key < adj_last,
        consumed_cand_side,
        _np.where(last_key == adj_last, lengths + n_adj, consumed_adj_side),
    )
    per_segment = _np.where(nonempty, consumed - matches_per_seg, 0)
    return BatchIntersectionResult(matches, int(per_segment.sum()))


def hash_batch(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Batched counterpart of :func:`hash_intersection`.

    Same inputs/outputs as :func:`merge_path_batch`; the comparison count
    models the scalar kernel rebuilding its hash table once per segment:
    ``segments * len(adjacency) + len(candidate_keys)``.
    """
    if _np is None or len(candidate_keys) + len(adjacency_keys) <= _SCALAR_BATCH_CUTOFF:
        return _batch_via_scalar(
            hash_intersection, candidate_keys, offsets, adjacency_keys
        )
    cand = _np.asarray(candidate_keys, dtype=_np.int64)
    offs = _np.asarray(offsets, dtype=_np.int64)
    adj = _np.asarray(adjacency_keys, dtype=_np.int64)
    _check_offsets(cand, offs)
    matches, _valid = _vector_matches(cand, offs, adj)
    comparisons = (len(offs) - 1) * int(adj.size) + int(cand.size)
    return BatchIntersectionResult(matches, comparisons)


def binary_search_batch(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Batched binary-search intersection (scalar loop; kept for the ablation).

    Binary search probes are already O(log) each, so there is little to gain
    from vectorizing; this wrapper exists so every scalar kernel has a
    batch-shaped counterpart with aggregate-exact comparison counts.
    """
    return _batch_via_scalar(
        binary_search_intersection, candidate_keys, offsets, adjacency_keys
    )


#: Batch-shaped kernels keyed by the same names as :data:`INTERSECTION_KERNELS`.
BATCH_KERNELS = {
    "merge_path": merge_path_batch,
    "binary_search": binary_search_batch,
    "hash": hash_batch,
}


# ---------------------------------------------------------------------------
# Row-batch kernels (columnar engine)
# ---------------------------------------------------------------------------
#
# The batch kernels above intersect many segments against ONE shared
# adjacency (all wedges targeting the same vertex q).  The columnar survey
# engine coalesces one level higher — one RPC per (source rank, destination
# rank) pair — so a single call must intersect segments against *different*
# adjacency rows of one CSR.  The row kernels do that in one vectorized pass
# using composite keys: a CSR whose rows are each sorted by target order-id
# yields a globally sorted array under ``edge_row * order_count + tgt_id``,
# so one ``searchsorted`` of per-candidate composite keys finds every match
# against every row at once.  Per segment they produce exactly the matches
# and comparison counts the scalar kernels would, like the batch kernels.


class RowAdjacency:
    """One rank's CSR target-id arrays packaged for the row kernels.

    ``keys`` is the full edge-major target order-id array (each row's slice
    sorted ascending), ``indptr`` the row offsets, ``order_count`` the number
    of dense ``<+`` order ids (the composite-key stride).  ``composite`` —
    ``row_of_edge * order_count + key`` — is built lazily and only when NumPy
    is available; the scalar fallback path never needs it.
    """

    __slots__ = ("keys", "indptr", "order_count", "_composite")

    def __init__(self, keys, indptr, order_count: int) -> None:
        self.keys = keys
        self.indptr = indptr
        self.order_count = order_count
        self._composite = None

    def composite(self):
        if self._composite is None:
            indptr = _np.asarray(self.indptr, dtype=_np.int64)
            lengths = indptr[1:] - indptr[:-1]
            edge_rows = _np.repeat(
                _np.arange(lengths.size, dtype=_np.int64), lengths
            )
            self._composite = edge_rows * _np.int64(self.order_count) + _np.asarray(
                self.keys, dtype=_np.int64
            )
        return self._composite

    def row_slice(self, row: int) -> Tuple[int, int]:
        return int(self.indptr[row]), int(self.indptr[row + 1])


class RowBatchResult:
    """Matches plus the aggregate comparison count of one row-batch call.

    ``seg``/``cand_pos``/``adj_pos`` are parallel index arrays (or lists in
    the scalar fallback): match ``i`` is segment ``seg[i]``'s candidate at
    *flat* position ``cand_pos[i]`` of the concatenated candidate array,
    matching the adjacency entry at *global* edge position ``adj_pos[i]`` of
    the :class:`RowAdjacency`.  Ascending segment order, ascending candidate
    position within a segment — the scalar kernels' order.
    """

    __slots__ = ("seg", "cand_pos", "adj_pos", "comparisons")

    def __init__(self, seg, cand_pos, adj_pos, comparisons: int) -> None:
        self.seg = seg
        self.cand_pos = cand_pos
        self.adj_pos = adj_pos
        self.comparisons = comparisons

    def __len__(self) -> int:
        return len(self.seg)


def _rows_via_scalar(
    kernel: Callable[..., IntersectionResult],
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Reference row-batch implementation: one scalar call per segment."""
    _check_offsets(candidate_keys, offsets)
    cand_list = (
        candidate_keys.tolist()
        if hasattr(candidate_keys, "tolist")
        else list(candidate_keys)
    )
    keys = adjacency.keys
    seg_out: List[int] = []
    cand_out: List[int] = []
    adj_out: List[int] = []
    comparisons = 0
    for seg in range(len(offsets) - 1):
        lo, hi = int(offsets[seg]), int(offsets[seg + 1])
        adj_lo, adj_hi = adjacency.row_slice(int(seg_rows[seg]))
        adj_keys = keys[adj_lo:adj_hi]
        if hasattr(adj_keys, "tolist"):
            adj_keys = adj_keys.tolist()
        result = kernel(cand_list[lo:hi], adj_keys, _identity, _identity)
        comparisons += result.comparisons
        for cand_idx, adj_idx in result.matches:
            seg_out.append(seg)
            cand_out.append(lo + cand_idx)
            adj_out.append(adj_lo + adj_idx)
    return RowBatchResult(seg_out, cand_out, adj_out, comparisons)


def _row_matches(cand, offs, rows, adjacency: RowAdjacency):
    """Shared composite-key match lookup of the vectorized row kernels.

    Returns ``(seg_of_cand, pos, hits)``: per-candidate segment indices, the
    searchsorted position of every candidate's composite key in the
    adjacency's composite array, and the flat candidate positions that
    matched (ascending — segment order, candidate order within a segment).
    """
    lengths = offs[1:] - offs[:-1]
    seg_of_cand = _np.repeat(_np.arange(offs.size - 1, dtype=_np.int64), lengths)
    composite = adjacency.composite()
    cand_comp = rows[seg_of_cand] * _np.int64(adjacency.order_count) + cand
    pos = _np.searchsorted(composite, cand_comp)
    if composite.size:
        clipped = _np.minimum(pos, composite.size - 1)
        valid = (pos < composite.size) & (composite[clipped] == cand_comp)
    else:
        valid = _np.zeros(cand.size, dtype=bool)
    return seg_of_cand, pos, _np.nonzero(valid)[0]


def merge_path_rows(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Intersect segment ``s`` against adjacency row ``seg_rows[s]``, merge cost.

    Same contract as :func:`merge_path_batch` generalised to per-segment
    adjacency rows: matches and the aggregate comparison count are exactly
    what one :func:`merge_path_intersection` call per segment (against its
    row slice) would produce.
    """
    if _np is None or (
        len(candidate_keys) <= _SCALAR_BATCH_CUTOFF
        and len(offsets) - 1 <= _SCALAR_ROW_SEGMENT_CUTOFF
    ):
        return _rows_via_scalar(
            merge_path_intersection, candidate_keys, offsets, seg_rows, adjacency
        )
    cand = _np.asarray(candidate_keys, dtype=_np.int64)
    offs = _np.asarray(offsets, dtype=_np.int64)
    rows = _np.asarray(seg_rows, dtype=_np.int64)
    _check_offsets(cand, offs)
    indptr = _np.asarray(adjacency.indptr, dtype=_np.int64)
    keys = _np.asarray(adjacency.keys, dtype=_np.int64)
    stride = _np.int64(adjacency.order_count)
    composite = adjacency.composite()
    if cand.size == 0 or composite.size == 0:
        # A merge against an empty side performs no comparisons.
        empty = _np.empty(0, dtype=_np.int64)
        return RowBatchResult(empty, empty, empty, 0)

    n_seg = offs.size - 1
    lengths = offs[1:] - offs[:-1]
    adj_lo = indptr[rows]
    adj_len = indptr[rows + 1] - adj_lo

    seg_of_cand, pos, hits = _row_matches(cand, offs, rows, adjacency)
    seg_hits = seg_of_cand[hits]
    matches_per_seg = _np.bincount(seg_hits, minlength=n_seg)

    # Comparison replay (the merge_path_batch closed form, per-row bounds).
    nonempty = (lengths > 0) & (adj_len > 0)
    last_key = cand[_np.where(lengths > 0, offs[1:] - 1, 0)]
    adj_last = keys[_np.where(adj_len > 0, adj_lo + adj_len - 1, 0)]
    last_comp = rows * stride + last_key
    rank_pos = _np.searchsorted(composite, last_comp, side="left")
    rank_of_last = rank_pos - adj_lo
    rank_clipped = _np.minimum(rank_pos, composite.size - 1)
    last_in_adj = (rank_of_last < adj_len) & (composite[rank_clipped] == last_comp)
    consumed_cand_side = lengths + rank_of_last + last_in_adj

    # Candidates <= the row's last adjacency key, counted per segment via the
    # segment-composite trick (segments are concatenated in ascending order).
    seg_comp = seg_of_cand * stride + cand
    below = (
        _np.searchsorted(
            seg_comp, _np.arange(n_seg, dtype=_np.int64) * stride + adj_last, side="right"
        )
        - offs[:-1]
    )
    consumed_adj_side = adj_len + below

    consumed = _np.where(
        last_key < adj_last,
        consumed_cand_side,
        _np.where(last_key == adj_last, lengths + adj_len, consumed_adj_side),
    )
    per_segment = _np.where(nonempty, consumed - matches_per_seg, 0)
    return RowBatchResult(seg_hits, hits, pos[hits], int(per_segment.sum()))


def hash_rows(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Row-batch counterpart of :func:`hash_intersection`.

    The comparison count models one table build per segment over its row:
    ``sum(row lengths) + len(candidate_keys)``.
    """
    if _np is None or (
        len(candidate_keys) <= _SCALAR_BATCH_CUTOFF
        and len(offsets) - 1 <= _SCALAR_ROW_SEGMENT_CUTOFF
    ):
        return _rows_via_scalar(
            hash_intersection, candidate_keys, offsets, seg_rows, adjacency
        )
    cand = _np.asarray(candidate_keys, dtype=_np.int64)
    offs = _np.asarray(offsets, dtype=_np.int64)
    rows = _np.asarray(seg_rows, dtype=_np.int64)
    _check_offsets(cand, offs)
    indptr = _np.asarray(adjacency.indptr, dtype=_np.int64)
    seg_of_cand, pos, hits = _row_matches(cand, offs, rows, adjacency)
    adj_len = indptr[rows + 1] - indptr[rows]
    comparisons = int(adj_len.sum()) + int(cand.size)
    return RowBatchResult(seg_of_cand[hits], hits, pos[hits], comparisons)


def binary_search_rows(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Row-batch binary-search intersection (scalar loop, parity-exact)."""
    return _rows_via_scalar(
        binary_search_intersection, candidate_keys, offsets, seg_rows, adjacency
    )


#: Row-batch kernels keyed by the same names as :data:`INTERSECTION_KERNELS`.
ROW_KERNELS = {
    "merge_path": merge_path_rows,
    "binary_search": binary_search_rows,
    "hash": hash_rows,
}


# ---------------------------------------------------------------------------
# Kernel tiers
# ---------------------------------------------------------------------------
#
# The batch/row kernels above are the *columnar* tier: NumPy array pipelines
# with a scalar small-input escape hatch.  Two more tiers share their exact
# contract (identical matches, identical aggregate comparison counts):
#
# * ``scalar``   — the reference loops (:func:`_batch_via_scalar` /
#   :func:`_rows_via_scalar`) applied unconditionally; always available.
# * ``compiled`` — numba-jitted merge loops (:mod:`.intersection_compiled`),
#   registered only when numba imports; requesting it without numba follows
#   the declared fallback chain ``compiled -> columnar -> scalar`` silently,
#   the same way engines downgrade when NumPy is missing.
#
# Tier selection travels as ``kernel_tier`` on
# :class:`~repro.core.engine.request.EngineConfig`/``SurveyRequest`` and is
# resolved here, in one place, for every engine.

#: Kernel tiers in preference order (fastest first).
KERNEL_TIERS = ("compiled", "columnar", "scalar")

#: Declared downgrade chain: the tier used when the requested one is
#: unavailable (``None`` terminates the chain).
KERNEL_TIER_FALLBACK = {"compiled": "columnar", "columnar": "scalar", "scalar": None}


def _scalar_tier_batch(name: str):
    scalar = INTERSECTION_KERNELS[name]

    def batch_kernel_scalar(candidate_keys, offsets, adjacency_keys):
        return _batch_via_scalar(scalar, candidate_keys, offsets, adjacency_keys)

    batch_kernel_scalar.__name__ = f"{name}_batch_scalar"
    return batch_kernel_scalar


def _scalar_tier_rows(name: str):
    scalar = INTERSECTION_KERNELS[name]

    def row_kernel_scalar(candidate_keys, offsets, seg_rows, adjacency):
        return _rows_via_scalar(scalar, candidate_keys, offsets, seg_rows, adjacency)

    row_kernel_scalar.__name__ = f"{name}_rows_scalar"
    return row_kernel_scalar


#: Tier -> {kernel name -> batch kernel}.  The ``compiled`` entry is added at
#: the bottom of this module when numba is importable.
BATCH_KERNEL_TIERS = {
    "columnar": BATCH_KERNELS,
    "scalar": {name: _scalar_tier_batch(name) for name in INTERSECTION_KERNELS},
}

#: Tier -> {kernel name -> row kernel}; same shape as BATCH_KERNEL_TIERS.
ROW_KERNEL_TIERS = {
    "columnar": ROW_KERNELS,
    "scalar": {name: _scalar_tier_rows(name) for name in INTERSECTION_KERNELS},
}


def available_kernel_tiers() -> Tuple[str, ...]:
    """The tiers usable in this environment, in preference order.

    ``columnar`` and ``scalar`` are always listed (the columnar kernels
    degrade to the scalar loops internally when NumPy is missing);
    ``compiled`` appears only when numba imported at module load.
    """
    return tuple(tier for tier in KERNEL_TIERS if tier in ROW_KERNEL_TIERS)


def resolve_kernel_tier(tier: Optional[str] = None) -> str:
    """Normalise a ``kernel_tier`` selector to an available tier name.

    ``None`` (and ``"auto"``) select the columnar tier — today's default,
    so existing callers see bit-identical behaviour.  A named tier must be
    one of :data:`KERNEL_TIERS`; if it is not available here it downgrades
    along :data:`KERNEL_TIER_FALLBACK` (results are identical either way —
    the cross-tier property suite pins the contract).
    """
    if tier is None or tier == "auto":
        return "columnar" if _np is not None else "scalar"
    if tier not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {tier!r}; known: {KERNEL_TIERS}"
        )
    available = available_kernel_tiers()
    while tier is not None and tier not in available:
        tier = KERNEL_TIER_FALLBACK[tier]
    return tier if tier is not None else "scalar"


def batch_kernel(name: str, tier: Optional[str] = None):
    """The batch-shaped kernel ``name`` at (resolved) ``tier``."""
    return BATCH_KERNEL_TIERS[resolve_kernel_tier(tier)][name]


def row_kernel(name: str, tier: Optional[str] = None):
    """The row-batch kernel ``name`` at (resolved) ``tier``."""
    return ROW_KERNEL_TIERS[resolve_kernel_tier(tier)][name]


# Import last: intersection_compiled imports this module's result classes,
# and registers its kernels into the tier tables only when numba is present.
# (The compiled tier sits on top of NumPy arrays, so it is skipped entirely
# when NumPy itself is unavailable.)
if _np is not None:
    from . import intersection_compiled as _compiled  # noqa: E402

    if _compiled.NUMBA_AVAILABLE:  # pragma: no cover - requires a numba install
        BATCH_KERNEL_TIERS["compiled"] = _compiled.COMPILED_BATCH_KERNELS
        ROW_KERNEL_TIERS["compiled"] = _compiled.COMPILED_ROW_KERNELS
