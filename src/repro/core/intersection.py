"""Adjacency-list intersection kernels.

The basic unit of work in triangle identification is the wedge check:
given the pivot's candidate list (a suffix of ``Adj+_m(p)``) and the target
vertex's adjacency ``Adj+_m(q)``, find the common vertices ``r`` — each one
closes a triangle Δpqr.  The paper uses a merge-path intersection (both lists
are sorted by the ``<+`` degree order); the related-work section surveys the
two main alternatives, binary search and hashing, which are provided here as
well so the ablation benchmark can compare them on identical inputs.

Every kernel returns the list of matches *with the positions* of the match in
both inputs, because the caller needs the metadata stored alongside each
entry, and reports the number of elementary comparisons performed so the
simulated compute cost reflects the kernel actually used.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

__all__ = [
    "merge_path_intersection",
    "binary_search_intersection",
    "hash_intersection",
    "IntersectionResult",
    "INTERSECTION_KERNELS",
]

#: One match: (index into the candidate list, index into the adjacency list).
Match = Tuple[int, int]


class IntersectionResult:
    """Matches plus the comparison count of one intersection call."""

    __slots__ = ("matches", "comparisons")

    def __init__(self, matches: List[Match], comparisons: int) -> None:
        self.matches = matches
        self.comparisons = comparisons

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)


def merge_path_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Simultaneous traversal of two sorted lists (the paper's kernel).

    Both inputs must be sorted ascending by their respective key functions,
    and the keys must be drawn from the same total order (the ``<+`` order).
    Complexity O(len(candidates) + len(adjacency)).
    """
    matches: List[Match] = []
    comparisons = 0
    i = 0
    j = 0
    n_cand = len(candidates)
    n_adj = len(adjacency)
    while i < n_cand and j < n_adj:
        comparisons += 1
        ck = candidate_key(candidates[i])
        ak = adjacency_key(adjacency[j])
        if ck == ak:
            matches.append((i, j))
            i += 1
            j += 1
        elif ck < ak:
            i += 1
        else:
            j += 1
    return IntersectionResult(matches, comparisons)


def binary_search_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Binary-search each candidate in the (sorted) adjacency list.

    Complexity O(len(candidates) * log len(adjacency)); preferable when the
    candidate list is much shorter than the adjacency list (TriCore's choice
    on GPUs).
    """
    matches: List[Match] = []
    comparisons = 0
    adj_keys = [adjacency_key(entry) for entry in adjacency]
    for i, candidate in enumerate(candidates):
        ck = candidate_key(candidate)
        lo, hi = 0, len(adj_keys)
        while lo < hi:
            comparisons += 1
            mid = (lo + hi) // 2
            if adj_keys[mid] < ck:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(adj_keys):
            comparisons += 1
            if adj_keys[lo] == ck:
                matches.append((i, lo))
    return IntersectionResult(matches, comparisons)


def hash_intersection(
    candidates: Sequence[Any],
    adjacency: Sequence[Any],
    candidate_key: Callable[[Any], Any],
    adjacency_key: Callable[[Any], Any],
) -> IntersectionResult:
    """Hash the adjacency list, probe with each candidate (TRUST/H-Index style).

    Complexity O(len(candidates) + len(adjacency)); does not require either
    input to be sorted.
    """
    matches: List[Match] = []
    table = {}
    comparisons = 0
    for j, entry in enumerate(adjacency):
        table[adjacency_key(entry)] = j
        comparisons += 1
    for i, candidate in enumerate(candidates):
        comparisons += 1
        j = table.get(candidate_key(candidate))
        if j is not None:
            matches.append((i, j))
    return IntersectionResult(matches, comparisons)


#: Registry used by the survey engines and the ablation benchmark.
INTERSECTION_KERNELS = {
    "merge_path": merge_path_intersection,
    "binary_search": binary_search_intersection,
    "hash": hash_intersection,
}
