"""Callback library: the surveys described in the paper, ready to use.

TriPoll's defining feature is that the user supplies a callback executed on
the metadata of every triangle as it is identified.  This module packages the
callbacks the paper uses in its evaluation (plus the local-counting variants
it discusses) as small factory classes: each survey object owns whatever
distributed state it needs (counting sets, per-rank counters), exposes a
``callback`` bound method to hand to the survey engine, and a ``result()``
accessor to read after the run.

Included surveys
----------------

* :class:`TriangleCounter` — global triangle count (Algorithm 2).
* :class:`LocalTriangleCounter` — per-vertex triangle participation counts
  (clustering coefficients, vertex roles).
* :class:`EdgeSupportCounter` — per-edge triangle participation (truss
  decomposition support values).
* :class:`MaxEdgeLabelDistribution` — Algorithm 3: distribution of the
  maximum edge label over triangles whose vertex labels are pairwise
  distinct.
* :class:`ClosureTimeSurvey` — Algorithm 4: joint distribution of wedge
  opening time and triangle closing time for temporal graphs.
* :class:`DegreeTripleSurvey` — Section 5.9: counts of
  ``(ceil(log2 d(p)), ceil(log2 d(q)), ceil(log2 d(r)))`` triples.
* :class:`FqdnTripleSurvey` — Section 5.8: counts of FQDN 3-tuples over
  triangles whose three FQDNs are pairwise distinct.

Columnar delivery
-----------------

Every reducer exposes two entry points: the scalar ``callback(ctx, tri)``
(one :class:`~repro.graph.metadata.TriangleMetadata` per triangle — the
parity oracle, and what the legacy/batched engines invoke) and a vectorized
``callback_batch(ctx, batch)`` consuming a
:class:`~repro.graph.metadata.TriangleBatch` of columns, which the columnar
engine (``triangle_survey(..., engine="columnar")``) prefers.  The batch
methods are contract-exact aggregates of the scalar ones: they derive their
keys column-wise (NumPy where it helps) but apply every counting-set
increment in the scalar invocation order through
:meth:`~repro.containers.counting_set.DistributedCountingSet.increment_run`,
so reducer outputs *and* every communication counter (cache evictions
included) are bit-identical to running the scalar callback per triangle of
the same batches.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..containers.counting_set import DistributedCountingSet
from ..graph.metadata import TriangleBatch, TriangleMetadata, edge_timestamp
from ..runtime.reductions import all_reduce_sum
from ..runtime.world import RankContext, World

try:  # NumPy accelerates the batch reducers' key derivation when available.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallbacks
    _np = None

__all__ = [
    "TriangleCounter",
    "LocalTriangleCounter",
    "EdgeSupportCounter",
    "MaxEdgeLabelDistribution",
    "ClosureTimeSurvey",
    "DegreeTripleSurvey",
    "FqdnTripleSurvey",
    "REDUCER_REGISTRY",
    "reducer_names",
    "registered_reducers",
    "get_reducer",
    "log2_bucket",
    "log2_bucket_array",
    "merge_count_dicts",
]


def merge_count_dicts(snapshots: "Any") -> Dict[Any, int]:
    """Sum an iterable of ``key -> count`` histograms into one.

    The merge half of the reducer ``snapshot``/``merge`` contract used by
    sliding-window streaming surveys (see :mod:`repro.core.incremental` and
    ``docs/reducers.md``): counts are additive, so a window's histogram is
    the sum of its per-batch panel snapshots.
    """
    merged: Dict[Any, int] = {}
    for snap in snapshots:
        for key, amount in snap.items():
            merged[key] = merged.get(key, 0) + amount
    return merged


class _SnapshotMerge:
    """``snapshot()``/``merge()`` for histogram-shaped reducers.

    ``snapshot()`` freezes the reducer's current :meth:`result` as a plain
    dict (one *panel* of a streaming survey); the :meth:`merge` classmethod
    sums any number of panels back into one result of the same shape.  Both
    are pure — they never touch distributed state — so panels survive after
    the reducer (and its counting set) is discarded, which is what lets a
    sliding window retire old batches by simply dropping their panels.
    """

    def snapshot(self) -> Dict[Any, int]:
        """A frozen copy of :meth:`result` (safe to keep after the reducer dies)."""
        return dict(self.result())

    @classmethod
    def merge(cls, snapshots) -> Dict[Any, int]:
        """Sum panel snapshots produced by :meth:`snapshot`."""
        return merge_count_dicts(snapshots)

    # -- worker-state protocol (process backend) ---------------------------
    # Counting-set reducers keep all per-rank state in ``container:`` slots
    # of ``ctx.local_state``, which the process backend ships home wholesale;
    # there is nothing extra to transfer.
    def worker_rank_state(self, rank: int) -> None:
        """Per-rank reducer state to ship from a worker (none: slots cover it)."""
        return None

    def absorb_rank_state(self, rank: int, state: Any) -> None:
        """Absorb a worker's shipped per-rank state (none to absorb)."""
        return None


def log2_bucket(value: float) -> int:
    """``ceil(log2(value))`` with the conventions the paper's callbacks need.

    Values of zero or below (possible when two comments carry an identical
    timestamp) fall into bucket 0, as does any value below one second.
    Computed from the float's exponent (``frexp``) rather than a rounded
    ``log2`` so the result is the exact mathematical ceiling for every
    representable value — and so the vectorized
    :func:`log2_bucket_array` can reproduce it bit-for-bit.
    """
    if value <= 1.0:
        return 0
    mantissa, exponent = math.frexp(value)
    # value == mantissa * 2**exponent with 0.5 <= mantissa < 1, so
    # ceil(log2(value)) is `exponent`, except exactly at powers of two.
    return exponent - 1 if mantissa == 0.5 else exponent


def log2_bucket_array(values: Any) -> Any:
    """Vectorized :func:`log2_bucket` over a float array (requires NumPy)."""
    v = _np.asarray(values, dtype=_np.float64)
    mantissa, exponent = _np.frexp(v)
    buckets = _np.where(mantissa == 0.5, exponent - 1, exponent)
    return _np.where(v <= 1.0, 0, buckets).astype(_np.int64)


class TriangleCounter:
    """Algorithm 2: count triangles with a per-rank counter + all-reduce."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._per_rank: List[int] = [0] * world.nranks

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        self._per_rank[ctx.rank] += 1

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        self._per_rank[ctx.rank] += len(batch)

    def local_count(self, rank: int) -> int:
        return self._per_rank[rank]

    def result(self) -> int:
        """Global triangle count (the All_Reduce of Algorithm 2)."""
        return all_reduce_sum(self.world, self._per_rank)

    def snapshot(self) -> int:
        """The current global count as a plain int (streaming panel)."""
        return self.result()

    @classmethod
    def merge(cls, snapshots) -> int:
        """Sum panel counts produced by :meth:`snapshot`."""
        return sum(snapshots)

    # -- worker-state protocol (process backend) ---------------------------
    # Unlike the counting-set reducers this one holds its state on the
    # reducer object itself, so each worker ships its owned ranks' counters
    # home explicitly.
    def worker_rank_state(self, rank: int) -> int:
        """This rank's local counter, shipped from the owning worker."""
        return self._per_rank[rank]

    def absorb_rank_state(self, rank: int, state: int) -> None:
        """Adopt a worker's counter for ``rank`` (replaces, never sums)."""
        self._per_rank[rank] = state


class LocalTriangleCounter(_SnapshotMerge):
    """Per-vertex triangle participation counts.

    Every triangle Δpqr increments the count of all three vertices.  Counts
    for remote vertices are accumulated through a distributed counting set,
    exactly like a local clustering-coefficient or vertex-role workload
    would.
    """

    def __init__(
        self,
        world: World,
        cache_capacity: int = 1024,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.counts = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        self.counts.async_increment(ctx, tri.p)
        self.counts.async_increment(ctx, tri.q)
        self.counts.async_increment(ctx, tri.r)

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        items = [
            vertex
            for triple in zip(batch.p, batch.q, batch.r)
            for vertex in triple
        ]
        self.counts.increment_run(ctx, items)

    def finalize(self) -> None:
        """Flush caches; call before the final barrier completes the survey."""
        self.counts.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Any, int]:
        return self.counts.counts()

    def count_of(self, vertex: Any) -> int:
        return self.counts.count_of(vertex)


class EdgeSupportCounter(_SnapshotMerge):
    """Per-edge triangle participation (truss support values).

    Edges are keyed canonically as ``(min, max)`` by vertex ordering so the
    counts of (u, v) and (v, u) coincide.
    """

    def __init__(
        self,
        world: World,
        cache_capacity: int = 1024,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.counts = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    @staticmethod
    def _edge_key(u: Any, v: Any) -> Tuple[Any, Any]:
        try:
            return (u, v) if u <= v else (v, u)
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        self.counts.async_increment(ctx, self._edge_key(tri.p, tri.q))
        self.counts.async_increment(ctx, self._edge_key(tri.p, tri.r))
        self.counts.async_increment(ctx, self._edge_key(tri.q, tri.r))

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        edge_key = self._edge_key
        items: List[Tuple[Any, Any]] = []
        append = items.append
        for p, q, r in zip(batch.p, batch.q, batch.r):
            append(edge_key(p, q))
            append(edge_key(p, r))
            append(edge_key(q, r))
        self.counts.increment_run(ctx, items)

    def finalize(self) -> None:
        self.counts.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Tuple[Any, Any], int]:
        return self.counts.counts()

    def support(self, u: Any, v: Any) -> int:
        return self.counts.count_of(self._edge_key(u, v))


class MaxEdgeLabelDistribution(_SnapshotMerge):
    """Algorithm 3: distribution of the maximum edge label over triangles
    whose three vertex labels are pairwise distinct."""

    def __init__(
        self,
        world: World,
        edge_label: Optional[Callable[[Any], Any]] = None,
        vertex_label: Optional[Callable[[Any], Any]] = None,
        cache_capacity: int = 1024,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.edge_label = edge_label if edge_label is not None else (lambda meta: meta)
        self.vertex_label = vertex_label if vertex_label is not None else (lambda meta: meta)
        self.counters = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        labels = (
            self.vertex_label(tri.meta_p),
            self.vertex_label(tri.meta_q),
            self.vertex_label(tri.meta_r),
        )
        if labels[0] == labels[1] or labels[1] == labels[2] or labels[0] == labels[2]:
            return
        max_edge = max(
            self.edge_label(tri.meta_pq),
            self.edge_label(tri.meta_pr),
            self.edge_label(tri.meta_qr),
        )
        self.counters.async_increment(ctx, max_edge)

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        vertex_label = self.vertex_label
        edge_label = self.edge_label
        items: List[Any] = []
        for mp, mq, mr, mpq, mpr, mqr in zip(
            batch.meta_p, batch.meta_q, batch.meta_r,
            batch.meta_pq, batch.meta_pr, batch.meta_qr,
        ):
            lp, lq, lr = vertex_label(mp), vertex_label(mq), vertex_label(mr)
            if lp == lq or lq == lr or lp == lr:
                continue
            items.append(max(edge_label(mpq), edge_label(mpr), edge_label(mqr)))
        self.counters.increment_run(ctx, items)

    def finalize(self) -> None:
        self.counters.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Any, int]:
        return self.counters.counts()


class ClosureTimeSurvey(_SnapshotMerge):
    """Algorithm 4: joint distribution of wedge-opening and triangle-closing times.

    For each triangle the three edge timestamps ``t1 <= t2 <= t3`` define the
    wedge opening time ``t2 - t1`` and the closing time ``t3 - t1``; the
    counter keyed by ``(ceil(log2 dt_open), ceil(log2 dt_close))`` is
    incremented.  Unlike Algorithm 4's listing (which inherits the distinct-
    vertex-label filter from Algorithm 3), vertex metadata is not consulted:
    the Reddit experiment stores timestamps only on edges (Section 5.7).
    """

    def __init__(
        self,
        world: World,
        timestamp: Optional[Callable[[Any], float]] = None,
        cache_capacity: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.timestamp = timestamp if timestamp is not None else edge_timestamp
        self.counters = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        t_pq = self.timestamp(tri.meta_pq)
        t_pr = self.timestamp(tri.meta_pr)
        t_qr = self.timestamp(tri.meta_qr)
        t1, t2, t3 = sorted((t_pq, t_pr, t_qr))
        open_bucket = log2_bucket(t2 - t1)
        close_bucket = log2_bucket(t3 - t1)
        self.counters.async_increment(ctx, (open_bucket, close_bucket))

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        timestamp = self.timestamp
        # Sort and subtract per triangle in the stamps' own arithmetic —
        # casting raw stamps to float64 first would lose sub-ULP resolution
        # for integer timestamps beyond 2**53 (epoch nanoseconds) and
        # diverge from the scalar callback's exact subtraction.  Only the
        # bucketing is vectorized: log2_bucket rounds its argument to float
        # exactly like the float64 cast of the *differences* does.
        opens: List[Any] = []
        closes: List[Any] = []
        for meta_pq, meta_pr, meta_qr in zip(
            batch.meta_pq, batch.meta_pr, batch.meta_qr
        ):
            t1, t2, t3 = sorted(
                (timestamp(meta_pq), timestamp(meta_pr), timestamp(meta_qr))
            )
            opens.append(t2 - t1)
            closes.append(t3 - t1)
        if _np is not None:
            items = list(
                zip(
                    log2_bucket_array(opens).tolist(),
                    log2_bucket_array(closes).tolist(),
                )
            )
        else:
            items = [
                (log2_bucket(dt_open), log2_bucket(dt_close))
                for dt_open, dt_close in zip(opens, closes)
            ]
        self.counters.increment_run(ctx, items)

    def finalize(self) -> None:
        self.counters.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Tuple[int, int], int]:
        """Joint histogram keyed by (open bucket, close bucket)."""
        return self.counters.counts()

    def closing_time_distribution(self) -> Dict[int, int]:
        """Marginal distribution of the closing-time bucket (Fig. 6 top)."""
        out: Dict[int, int] = {}
        for (_open_bucket, close_bucket), count in self.counters.counts().items():
            out[close_bucket] = out.get(close_bucket, 0) + count
        return out

    def opening_time_distribution(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for (open_bucket, _close_bucket), count in self.counters.counts().items():
            out[open_bucket] = out.get(open_bucket, 0) + count
        return out


class DegreeTripleSurvey(_SnapshotMerge):
    """Section 5.9: histogram of log2-bucketed degree triples (d(p), d(q), d(r)).

    Vertex metadata must carry the vertex's degree (an integer); the
    benchmark harness decorates the graph accordingly.  Note for streaming
    use: the triple is *role-ordered* (p, q, r) and the degree decoration is
    a snapshot in time, so unlike the other stock reducers its merged panels
    are not guaranteed to equal a full recompute on the merged graph.
    """

    def __init__(
        self,
        world: World,
        degree_of: Optional[Callable[[Any], int]] = None,
        cache_capacity: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.degree_of = degree_of if degree_of is not None else (lambda meta: int(meta))
        self.counters = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        triple = (
            log2_bucket(self.degree_of(tri.meta_p)),
            log2_bucket(self.degree_of(tri.meta_q)),
            log2_bucket(self.degree_of(tri.meta_r)),
        )
        self.counters.async_increment(ctx, triple)

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        degree_of = self.degree_of
        d_p = [degree_of(meta) for meta in batch.meta_p]
        d_q = [degree_of(meta) for meta in batch.meta_q]
        d_r = [degree_of(meta) for meta in batch.meta_r]
        if _np is not None:
            items = list(
                zip(
                    log2_bucket_array(d_p).tolist(),
                    log2_bucket_array(d_q).tolist(),
                    log2_bucket_array(d_r).tolist(),
                )
            )
        else:
            items = [
                (log2_bucket(a), log2_bucket(b), log2_bucket(c))
                for a, b, c in zip(d_p, d_q, d_r)
            ]
        self.counters.increment_run(ctx, items)

    def finalize(self) -> None:
        self.counters.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Tuple[int, int, int], int]:
        return self.counters.counts()


class FqdnTripleSurvey(_SnapshotMerge):
    """Section 5.8: count 3-tuples of FQDNs over triangles with three distinct FQDNs.

    Vertex metadata is the FQDN string.  Tuples are stored sorted so the
    count of a domain triple does not depend on the degree ordering of the
    triangle's vertices.
    """

    def __init__(
        self,
        world: World,
        cache_capacity: int = 4096,
        name: Optional[str] = None,
    ) -> None:
        self.world = world
        self.counters = DistributedCountingSet(
            world, name=name, cache_capacity=cache_capacity
        )

    def callback(self, ctx: RankContext, tri: TriangleMetadata) -> None:
        if not tri.all_distinct_vertex_metadata():
            return
        key = tuple(sorted((str(tri.meta_p), str(tri.meta_q), str(tri.meta_r))))
        self.counters.async_increment(ctx, key)

    def callback_batch(self, ctx: RankContext, batch: TriangleBatch) -> None:
        items: List[Tuple[str, str, str]] = []
        for mp, mq, mr in zip(batch.meta_p, batch.meta_q, batch.meta_r):
            if mp == mq or mq == mr or mp == mr:
                continue
            items.append(tuple(sorted((str(mp), str(mq), str(mr)))))
        self.counters.increment_run(ctx, items)

    def finalize(self) -> None:
        self.counters.flush_all_caches()
        self.world.barrier()

    def result(self) -> Dict[Tuple[str, str, str], int]:
        return self.counters.counts()

    def triangles_with_domain(self, domain: str) -> Dict[Tuple[str, str], int]:
        """2D distribution of the other two FQDNs over triangles containing ``domain``.

        This is the "triangles involving amazon.com" post-processing step of
        Section 5.8 (Fig. 8): the result maps (other domain 1, other domain 2)
        pairs — sorted — to counts.
        """
        out: Dict[Tuple[str, str], int] = {}
        for triple, count in self.counters.counts().items():
            if domain in triple:
                others = tuple(sorted(d for d in triple if d != domain))
                if len(others) == 2:
                    out[others] = out.get(others, 0) + count
        return out


# ---------------------------------------------------------------------------
# Reducer registry
# ---------------------------------------------------------------------------

#: Every stock reducer by name.  Tooling iterates this to enforce the
#: reducer contract fleet-wide: ``tools/check_engines.py`` asserts each
#: entry exposes the ``snapshot()`` / ``merge()`` / ``callback_batch``
#: trio, and ``tests/properties/test_property_reducers.py`` checks that
#: ``merge()`` over arbitrarily sharded snapshots equals the unsharded
#: result.  All entries construct with ``reducer(world)``.
REDUCER_REGISTRY: Dict[str, type] = {
    "triangle": TriangleCounter,
    "local-triangle": LocalTriangleCounter,
    "edge-support": EdgeSupportCounter,
    "max-edge-label": MaxEdgeLabelDistribution,
    "closure-time": ClosureTimeSurvey,
    "degree-triple": DegreeTripleSurvey,
    "fqdn-triple": FqdnTripleSurvey,
}


def reducer_names() -> Tuple[str, ...]:
    """Registered reducer names, in registration order."""
    return tuple(REDUCER_REGISTRY)


def registered_reducers() -> Dict[str, type]:
    """A copy of the name → reducer-class registry."""
    return dict(REDUCER_REGISTRY)


def get_reducer(name: str) -> type:
    """Look up a reducer class by registry name."""
    try:
        return REDUCER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown reducer {name!r}; registered: {', '.join(REDUCER_REGISTRY)}"
        ) from None
