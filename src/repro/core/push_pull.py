"""Push-Pull triangle survey (Section 4.4 of the paper).

The Push-Only algorithm can move enormous amounts of adjacency data towards
popular target vertices.  The Push-Pull optimisation adds a choice per
(source rank, target vertex) pair:

1. **Dry-run phase** — every rank walks its local pivots exactly like the
   push pass but *without sending adjacency data*: it only counts, per target
   vertex ``q``, how many candidate edges it would push to ``q`` in total
   across all of its local pivots, and remembers pointers to those pivots.
   It then sends one proposal message per (rank, ``q``) with the count.
   The owner of ``q`` compares the count against ``|Adj+(q)|``: if the
   adjacency list is smaller, it records the source rank in ``q``'s pull
   list; otherwise it replies telling the source rank to push as usual.
2. **Push phase** — identical to Push-Only, but sources skip every target
   whose adjacency list will be pulled instead.
3. **Pull phase** — owners send ``Adj^m_+(q)`` (coalesced: at most once per
   requesting rank) to the ranks on each pull list; the receiving rank runs
   the merge-path intersection locally for all of its pivots that wanted
   ``q``, and executes the callback there (all six metadata pieces are
   available: p's data is local, q's came with the pull).

Locally owned targets are always handled in the push phase — messages to
yourself never touch the wire, so pulling them cannot help.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from ..graph.dodgr import DODGraph, entry_key
from ..graph.metadata import TriangleBatch, TriangleMetadata
from ..runtime.serialization import uvarint_size
from .intersection import BATCH_KERNELS, INTERSECTION_KERNELS, ROW_KERNELS
from .results import SurveyReport
from .survey import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    TriangleCallback,
    _candidate_key,
    _concat_segments,
    _deliver_batch,
    _drive_batched_push,
    _drive_columnar_push,
    _legacy_push_payload_overhead,
    _make_batched_intersect_handler,
    _make_columnar_intersect_handler,
    _resolve_engine,
    _row_adjacency,
    resolve_batch_callback,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = [
    "triangle_survey_push_pull",
    "triangle_survey",
    "DRY_RUN_PHASE",
    "PUSH_PHASE",
    "PULL_PHASE",
]

DRY_RUN_PHASE = "dry_run"
PUSH_PHASE = "push"
PULL_PHASE = "pull"


def triangle_survey_push_pull(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
    batched: bool = False,
    engine: Optional[str] = None,
) -> SurveyReport:
    """Run the Push-Pull triangle survey over ``dodgr``.

    Parameters
    ----------
    dodgr:
        The degree-ordered directed graph built by :meth:`DODGraph.build`.
    callback:
        ``callback(ctx, tri)`` executed for every triangle on the rank where
        it is identified (the owner of ``q`` in the push phase, the pivot's
        rank in the pull phase).  ``None`` counts triangles only.
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); the paper's system uses merge-path.
    reset_stats:
        Clear the world's counters before running so the report reflects
        only this survey.
    callback_compute_units:
        Abstract compute units charged per identified triangle when a
        callback is supplied (see
        :data:`~repro.core.survey.DEFAULT_CALLBACK_COMPUTE_UNITS`).
    batched:
        Run the batched engine: the dry run coalesces its proposals into one
        RPC per (source rank, dest rank) carrying every ``(q, count)`` pair,
        the push phase coalesces candidate pushes per ``(destination rank,
        q)`` exactly like :func:`~repro.core.survey.triangle_survey_push`,
        and each pull-phase delivery intersects all of its waiting pivots in
        one vectorized batch-kernel call.  Every replaced message is
        accounted at its exact legacy size through the real buffer bank (the
        ``BatchedCall`` contract), so all communication totals stay
        byte-identical; because dry-run handlers reply with advise RPCs, the
        flush-window *split* of those follow-on messages carries the same
        bound as RPC-sending callbacks (see
        :class:`~repro.runtime.world.BatchedCall`) — identical in practice
        unless a rank's proposal stream overflows a buffer mid-drive.
    engine:
        Explicit engine selector overriding ``batched`` (``"legacy"``,
        ``"batched"``, ``"columnar"``).  The columnar engine additionally
        vectorizes the push-phase driver, delivers triangles to reducers as
        :class:`~repro.graph.metadata.TriangleBatch` columns, and coalesces
        the pull phase into one RPC per (owner rank, requesting rank) pair —
        each replaced ``Adj^m_+(q)`` delivery accounted at its exact legacy
        size, so the Table 3/Table 4 columns stay byte-identical.

    The returned report carries the three-phase breakdown (dry run / push /
    pull) and the number of pulled adjacency lists used for Table 3.
    """
    world = dodgr.world
    nranks = world.nranks
    engine = _resolve_engine(engine, batched)
    batched = engine in ("batched", "columnar")
    intersect = INTERSECTION_KERNELS[kernel]
    per_triangle_compute = callback_compute_units if callback is not None else 0
    if reset_stats:
        world.reset_stats()

    # Per-rank driver-side state for this run -------------------------------
    # pivots_by_target[rank][q] = list of (pivot vertex, index of q in its adj)
    pivots_by_target: List[Dict[Any, List[Tuple[Any, int]]]] = [dict() for _ in range(nranks)]
    # push_targets[rank] = set of target vertices this rank was told to push to
    push_targets: List[Set[Any]] = [set() for _ in range(nranks)]
    # pull_lists[rank][q] = list of source ranks that should receive Adj^m_+(q)
    pull_lists: List[Dict[Any, List[int]]] = [dict() for _ in range(nranks)]

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _propose_handler(ctx, q: Any, source_rank: int, candidate_count: int) -> None:
        """Owner of q decides: pull (remember source) or advise push."""
        record = dodgr.local_store(ctx).get(q)
        out_degree = len(record["adj"]) if record is not None else 0
        if record is not None and out_degree < candidate_count:
            pull_lists[ctx.rank].setdefault(q, []).append(source_rank)
        else:
            ctx.async_call_sized(source_rank, _advise_push_handler, q)

    def _advise_push_handler(ctx, q: Any) -> None:
        push_targets[ctx.rank].add(q)

    def _propose_batch_handler(ctx, source_rank: int, pairs: List[Tuple[Any, int]]) -> None:
        """One coalesced dry-run proposal per (source rank, dest rank).

        Carries every ``(q, count)`` pair the source generated for this
        rank's targets, in the source's legacy iteration order, and runs the
        per-pair decision logic unchanged — so pull-list append order and
        advise-reply order match the per-``(rank, q)`` message stream it
        replaces.
        """
        for q, candidate_count in pairs:
            _propose_handler(ctx, q, source_rank, candidate_count)

    def _intersect_handler(
        ctx, q: Any, p: Any, meta_p: Any, meta_pq: Any, candidates: List[tuple]
    ) -> None:
        """Push-phase wedge check at the owner of q (same as Push-Only)."""
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, _candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p, q=q, r=r,
                        meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                        meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                    ),
                )

    def _pull_deliver_handler(
        ctx, q: Any, meta_q: Any, adjacency_q: List[tuple]
    ) -> None:
        """Pull-phase: Adj^m_+(q) arrives at a source rank; intersect locally."""
        ctx.add_counter("vertices_pulled", 1)
        store = dodgr.local_store(ctx)
        wanting_pivots = pivots_by_target[ctx.rank].get(q, ())
        for p, q_index in wanting_pivots:
            record = store.get(p)
            if record is None:
                continue
            adjacency_p = record["adj"]
            meta_p = record["meta"]
            meta_pq = adjacency_p[q_index][2]
            suffix = adjacency_p[q_index + 1 :]
            ctx.add_counter("wedge_checks", len(suffix))
            result = intersect(suffix, adjacency_q, entry_key, _candidate_key)
            ctx.add_compute(result.comparisons)
            for suff_idx, pulled_idx in result.matches:
                r, _d_r, meta_pr, meta_r = suffix[suff_idx]
                meta_qr = adjacency_q[pulled_idx][2]
                ctx.add_counter("triangles_found", 1)
                if callback is not None:
                    ctx.add_compute(per_triangle_compute)
                    callback(
                        ctx,
                        TriangleMetadata(
                            p=p, q=q, r=r,
                            meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                            meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                        ),
                    )

    def _pull_deliver_batched_handler(
        ctx, q: Any, meta_q: Any, adjacency_q: List[tuple]
    ) -> None:
        """Pull-phase delivery, batched: intersect all waiting pivots at once.

        ``Adj^m_+(q)`` arrives once per requesting rank exactly as in the
        legacy path; instead of one merge per waiting pivot, every pivot's
        suffix becomes one segment of a single batch-kernel call against the
        pulled list (mapped to dense ``<+`` order ids).
        """
        ctx.add_counter("vertices_pulled", 1)
        csr = dodgr.csr(ctx)
        order_ids = dodgr.order_ids()
        pulled_ids = [order_ids[entry[0]] for entry in adjacency_q]
        rows: List[int] = []
        starts: List[int] = []
        ends: List[int] = []
        for p, q_index in pivots_by_target[ctx.rank].get(q, ()):
            row = csr.row_of(p)
            if row is None:
                continue
            lo, hi = csr.row_slice(row)
            start = lo + q_index + 1
            ctx.add_counter("wedge_checks", hi - start)
            rows.append(row)
            starts.append(start)
            ends.append(hi)
        if not rows:
            return
        candidate_ids, offsets = _concat_segments(csr.tgt_ids, starts, ends)
        result = batch_kernel(candidate_ids, offsets, pulled_ids)
        ctx.add_compute(result.comparisons)
        if not result.matches:
            return
        ctx.add_counter("triangles_found", len(result.matches))
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * len(result.matches))
        for wedge, cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr, meta_r = csr.entries[starts[wedge] + cand_idx]
            meta_qr = adjacency_q[adj_idx][2]
            row = rows[wedge]
            callback(
                ctx,
                TriangleMetadata(
                    p=csr.row_vertices[row], q=q, r=r,
                    meta_p=csr.row_meta[row], meta_q=meta_q, meta_r=meta_r,
                    meta_pq=csr.entries[starts[wedge] - 1][2],
                    meta_pr=meta_pr, meta_qr=meta_qr,
                ),
            )

    def _pull_deliver_columnar_handler(ctx, owner_csr, q_rows) -> None:
        """Pull-phase delivery, columnar: one RPC per (owner, requester) pair.

        ``q_rows`` indexes every adjacency row this owner rank is delivering
        to this requester, in the owner's legacy send order.  Each waiting
        pivot's suffix becomes one segment of a single row-kernel call
        against the owner's CSR rows, and the closing triangles are handed
        to the reducer as one :class:`TriangleBatch`.
        """
        ctx.add_counter("vertices_pulled", len(q_rows))
        csr = dodgr.csr(ctx)
        targets = pivots_by_target[ctx.rank]
        row_of = csr.row_of
        rows: List[int] = []
        starts: List[int] = []
        ends: List[int] = []
        seg_q_rows: List[int] = []
        wedge_checks = 0
        for q_row in q_rows.tolist():
            q = owner_csr.row_vertices[q_row]
            for p, q_index in targets.get(q, ()):
                row = row_of(p)
                if row is None:
                    continue
                lo, hi = csr.row_slice(row)
                start = lo + q_index + 1
                wedge_checks += hi - start
                rows.append(row)
                starts.append(start)
                ends.append(hi)
                seg_q_rows.append(q_row)
        ctx.add_counter("wedge_checks", wedge_checks)
        if not rows:
            return
        candidate_ids, offsets = _concat_segments(csr.tgt_ids, starts, ends)
        adjacency = _row_adjacency(owner_csr, dodgr.order_count())
        result = row_kernel(
            candidate_ids, offsets, _np.asarray(seg_q_rows, dtype=_np.int64), adjacency
        )
        ctx.add_compute(int(result.comparisons))
        matches = len(result)
        if not matches:
            return
        ctx.add_counter("triangles_found", matches)
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * matches)
        starts_arr = _np.asarray(starts, dtype=_np.int64)
        seg = result.seg if hasattr(result.seg, "tolist") else _np.asarray(result.seg)
        cand_pos = (
            result.cand_pos
            if hasattr(result.cand_pos, "tolist")
            else _np.asarray(result.cand_pos)
        )
        src_pos = (starts_arr[seg] + cand_pos - offsets[seg]).tolist()
        seg_list = seg.tolist()
        adj_pos = (
            result.adj_pos.tolist()
            if hasattr(result.adj_pos, "tolist")
            else list(result.adj_pos)
        )
        entries = csr.entries
        owner_entries = owner_csr.entries
        builders = {
            "p": lambda: [csr.row_vertices[rows[s]] for s in seg_list],
            "meta_p": lambda: [csr.row_meta[rows[s]] for s in seg_list],
            "q": lambda: [owner_csr.row_vertices[seg_q_rows[s]] for s in seg_list],
            "meta_q": lambda: [owner_csr.row_meta[seg_q_rows[s]] for s in seg_list],
            "meta_pq": lambda: [entries[starts[s] - 1][2] for s in seg_list],
            "r": lambda: [entries[pos][0] for pos in src_pos],
            "meta_pr": lambda: [entries[pos][2] for pos in src_pos],
            "meta_r": lambda: [entries[pos][3] for pos in src_pos],
            "meta_qr": lambda: [owner_entries[pos][2] for pos in adj_pos],
        }
        batch = TriangleBatch(len(src_pos), builders)
        _deliver_batch(ctx, batch, callback, batch_callback)

    # Handler registration order is identical in every mode so that handler
    # ids — and therefore the serialized size of every dry-run message and
    # the accounted size of every push/pull message — match the legacy run.
    batch_kernel = BATCH_KERNELS[kernel] if engine == "batched" else None
    row_kernel = ROW_KERNELS[kernel] if engine == "columnar" else None
    batch_callback = resolve_batch_callback(callback) if engine == "columnar" else None
    h_propose = world.register_handler(_propose_handler)
    _h_advise = world.register_handler(_advise_push_handler)
    if engine == "batched":
        h_intersect = world.register_handler(
            _make_batched_intersect_handler(
                dodgr, batch_kernel, callback, per_triangle_compute
            )
        )
        h_pull_deliver = world.register_handler(_pull_deliver_batched_handler)
        # Registered last: its id never crosses the accounted wire, so the
        # earlier ids (and every accounted legacy message size) still match
        # the legacy run exactly.
        h_propose_batch = world.register_handler(_propose_batch_handler)
    elif engine == "columnar":
        h_intersect = world.register_handler(
            _make_columnar_intersect_handler(
                dodgr, row_kernel, callback, batch_callback, per_triangle_compute
            )
        )
        # Occupies the legacy pull handler's registration slot, so the id
        # every accounted pull message serializes is the legacy one.
        h_pull_deliver = world.register_handler(_pull_deliver_columnar_handler)
        h_propose_batch = world.register_handler(_propose_batch_handler)
    else:
        h_intersect = world.register_handler(_intersect_handler)
        h_pull_deliver = world.register_handler(_pull_deliver_handler)

    host_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1: Push vs Pull dry run.
    # ------------------------------------------------------------------
    world.begin_phase(DRY_RUN_PHASE)
    for ctx in world.ranks:
        rank = ctx.rank
        store = dodgr.local_store(ctx)
        candidate_totals: Dict[Any, int] = {}
        targets = pivots_by_target[rank]
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            for i in range(len(adjacency) - 1):
                q = adjacency[i][0]
                suffix_len = len(adjacency) - 1 - i
                targets.setdefault(q, []).append((p, i))
                if dodgr.owner(q) == rank:
                    # Local targets are always pushed (zero wire cost).
                    push_targets[rank].add(q)
                else:
                    candidate_totals[q] = candidate_totals.get(q, 0) + suffix_len
        if batched:
            # Coalesce proposals: one batched RPC per (source rank, dest
            # rank) carrying every (q, count) pair, accounted — in legacy
            # iteration order, against the real buffer bank — as the exact
            # per-(rank, q) messages it replaces (the BatchedCall contract).
            per_dest: Dict[int, Tuple[List[Tuple[Any, int]], List[int]]] = {}
            for q, total in candidate_totals.items():
                dest = dodgr.owner(q)
                nbytes = world.registry.call_size(h_propose, (q, rank, total))
                ctx.account_rpc(dest, nbytes)
                bucket = per_dest.get(dest)
                if bucket is None:
                    per_dest[dest] = bucket = ([], [0])
                bucket[0].append((q, total))
                bucket[1][0] += nbytes
            for dest, (pairs, (dest_bytes,)) in per_dest.items():
                ctx.async_call_batched(
                    dest,
                    h_propose_batch,
                    rank,
                    pairs,
                    virtual_rpcs=len(pairs),
                    virtual_bytes=dest_bytes,
                )
            # Batched proposals execute in the barrier's first delivery
            # sweep — before its flush pass.  Flush now, exactly where the
            # legacy run's barrier flushes the proposal buffers, so the
            # advise replies meet empty buffers in both paths and the
            # flush-window split (wire_messages, envelope bytes) matches.
            ctx.buffers.flush_all()
        else:
            for q, total in candidate_totals.items():
                ctx.async_call_sized(dodgr.owner(q), h_propose, q, rank, total)
    world.barrier()

    # ------------------------------------------------------------------
    # Phase 2: Push phase (skip targets that will be pulled).
    # ------------------------------------------------------------------
    world.begin_phase(PUSH_PHASE)
    if engine == "columnar":
        payload_overhead = _legacy_push_payload_overhead(h_intersect.handler_id)
        order_ids = dodgr.order_ids()
        for ctx in world.ranks:
            allowed = push_targets[ctx.rank]
            allowed_ids = _np.fromiter(
                (order_ids[q] for q in allowed), dtype=_np.int64, count=len(allowed)
            )
            _drive_columnar_push(
                ctx,
                dodgr,
                dodgr.csr(ctx),
                h_intersect,
                payload_overhead,
                allowed_ids=allowed_ids,
            )
    elif engine == "batched":
        payload_overhead = _legacy_push_payload_overhead(h_intersect.handler_id)
        for ctx in world.ranks:
            _drive_batched_push(
                ctx,
                dodgr.csr(ctx),
                h_intersect,
                payload_overhead,
                allowed=push_targets[ctx.rank],
            )
    else:
        for ctx in world.ranks:
            rank = ctx.rank
            store = dodgr.local_store(ctx)
            allowed = push_targets[rank]
            for p, record in store.items():
                adjacency = record["adj"]
                if len(adjacency) < 2:
                    continue
                meta_p = record["meta"]
                for i in range(len(adjacency) - 1):
                    q, _d_q, meta_pq, _meta_q = adjacency[i]
                    if q not in allowed:
                        continue
                    candidates = [
                        (entry[0], entry[1], entry[2]) for entry in adjacency[i + 1 :]
                    ]
                    ctx.async_call_sized(
                        dodgr.owner(q), h_intersect, q, p, meta_p, meta_pq, candidates
                    )
    world.barrier()

    # ------------------------------------------------------------------
    # Phase 3: Pull phase (owners broadcast adjacency lists, coalesced).
    # ------------------------------------------------------------------
    world.begin_phase(PULL_PHASE)
    if engine == "columnar":
        # One coalesced RPC per (owner rank, requesting rank) pair carrying
        # every pulled adjacency row, each replaced per-(q, requester)
        # delivery accounted — in legacy send order — at the exact
        # serialized size of the legacy message (same wire framing as the
        # push accounting: outer pair + argument list + payload list).
        pull_overhead = _legacy_push_payload_overhead(h_pull_deliver.handler_id)
        for ctx in world.ranks:
            rank = ctx.rank
            csr = dodgr.csr(rank)
            groups: Dict[int, Tuple[List[int], List[int]]] = {}
            for q, requesters in pull_lists[rank].items():
                row = csr.row_of(q)
                if row is None:
                    continue
                lo, hi = csr.row_slice(row)
                # The pulled payload omits meta(r): the requesting rank
                # stores meta(r) locally for every r it may close with.
                nbytes = (
                    pull_overhead
                    + csr.row_wire_sizes[row]
                    + uvarint_size(hi - lo)
                    + csr.cand_size_cumsum[hi]
                    - csr.cand_size_cumsum[lo]
                )
                for source_rank in requesters:
                    ctx.account_rpc(source_rank, nbytes)
                    group = groups.get(source_rank)
                    if group is None:
                        groups[source_rank] = group = ([], [0])
                    group[0].append(row)
                    group[1][0] += nbytes
            for source_rank, (q_row_list, (group_bytes,)) in groups.items():
                ctx.async_call_batched(
                    source_rank,
                    h_pull_deliver,
                    csr,
                    _np.asarray(q_row_list, dtype=_np.int64),
                    virtual_rpcs=len(q_row_list),
                    virtual_bytes=group_bytes,
                )
    else:
        for ctx in world.ranks:
            rank = ctx.rank
            store = dodgr.local_store(ctx)
            for q, requesters in pull_lists[rank].items():
                record = store.get(q)
                if record is None:
                    continue
                meta_q = record["meta"]
                # The pulled payload omits meta(r): the requesting rank stores
                # meta(r) locally for every r in its pivots' adjacency lists.
                payload = [(entry[0], entry[1], entry[2]) for entry in record["adj"]]
                for source_rank in requesters:
                    ctx.async_call_sized(source_rank, h_pull_deliver, q, meta_q, payload)
    world.barrier()

    host_seconds = time.perf_counter() - host_start
    phases = [DRY_RUN_PHASE, PUSH_PHASE, PULL_PHASE]
    simulated = world.simulated_time(phases=phases)
    return SurveyReport.from_world_stats(
        algorithm="push_pull",
        graph_name=graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )


def triangle_survey(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    algorithm: str = "push_pull",
    **kwargs: Any,
) -> SurveyReport:
    """Dispatch to the requested survey algorithm (``"push"`` or ``"push_pull"``).

    Remaining keyword arguments — including ``batched=True`` to select the
    coalesced CSR engine — are forwarded to the chosen survey function.
    """
    if algorithm == "push":
        from .survey import triangle_survey_push

        return triangle_survey_push(dodgr, callback, **kwargs)
    if algorithm == "push_pull":
        return triangle_survey_push_pull(dodgr, callback, **kwargs)
    raise ValueError(f"unknown survey algorithm {algorithm!r}")
