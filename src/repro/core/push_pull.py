"""Push-Pull triangle survey (Section 4.4 of the paper).

The Push-Only algorithm can move enormous amounts of adjacency data towards
popular target vertices.  The Push-Pull optimisation adds a choice per
(source rank, target vertex) pair:

1. **Dry-run phase** — every rank walks its local pivots exactly like the
   push pass but *without sending adjacency data*: it only counts, per target
   vertex ``q``, how many candidate edges it would push to ``q`` in total
   across all of its local pivots, and remembers pointers to those pivots.
   It then sends one proposal message per (rank, ``q``) with the count.
   The owner of ``q`` compares the count against ``|Adj+(q)|``: if the
   adjacency list is smaller, it records the source rank in ``q``'s pull
   list; otherwise it replies telling the source rank to push as usual.
2. **Push phase** — identical to Push-Only, but sources skip every target
   whose adjacency list will be pulled instead.
3. **Pull phase** — owners send ``Adj^m_+(q)`` (coalesced: at most once per
   requesting rank) to the ranks on each pull list; the receiving rank runs
   the merge-path intersection locally for all of its pivots that wanted
   ``q``, and executes the callback there (all six metadata pieces are
   available: p's data is local, q's came with the pull).

Locally owned targets are always handled in the push phase — messages to
yourself never touch the wire, so pulling them cannot help.

This module is a thin entry point over :mod:`repro.core.engine`: the
``engine=`` keyword selects a registered
:class:`~repro.core.engine.EngineSpec` whose ``proposal_style`` /
``push_style`` / ``pull_style`` fields pick the strategy of each phase, and
:func:`~repro.core.engine.push_pull.run_push_pull_survey` executes the
request on the shared driver core.  Every engine keeps the Table 3/Table 4
columns byte-identical — each coalesced message is accounted at the exact
serialized size of the legacy messages it replaces; because dry-run
handlers reply with advise RPCs, the flush-window *split* of those
follow-on messages carries the same bound as RPC-sending callbacks (see
:class:`~repro.runtime.world.BatchedCall`) — identical in practice unless a
rank's proposal stream overflows a buffer mid-drive.
"""

from __future__ import annotations

from typing import Any, Optional

from ..graph.dodgr import DODGraph
from .engine import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    DRY_RUN_PHASE,
    PULL_PHASE,
    PUSH_PHASE,
    SurveyRequest,
    TriangleCallback,
    resolve_backend,
    resolve_engine,
    split_backend_selector,
    split_engine_selector,
    split_execution_selector,
)
from .engine.push_pull import run_push_pull_survey
from .results import SurveyReport
from .survey import _handle_deprecated_batched

__all__ = [
    "triangle_survey_push_pull",
    "triangle_survey",
    "DRY_RUN_PHASE",
    "PUSH_PHASE",
    "PULL_PHASE",
]


def triangle_survey_push_pull(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
    batched: Optional[bool] = None,
    engine=None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    kernel_tier: Optional[str] = None,
    storage=None,
) -> SurveyReport:
    """Run the Push-Pull triangle survey over ``dodgr``.

    Parameters
    ----------
    dodgr:
        The degree-ordered directed graph built by :meth:`DODGraph.build`.
    callback:
        ``callback(ctx, tri)`` executed for every triangle on the rank where
        it is identified (the owner of ``q`` in the push phase, the pivot's
        rank in the pull phase).  ``None`` counts triangles only.
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); the paper's system uses merge-path.
    reset_stats:
        Clear the world's counters before running so the report reflects
        only this survey.
    callback_compute_units:
        Abstract compute units charged per identified triangle when a
        callback is supplied (see
        :data:`~repro.core.survey.DEFAULT_CALLBACK_COMPUTE_UNITS`).
    batched:
        Deprecated PR 1 selector; ``batched=True`` maps to
        ``engine="batched"`` with a ``DeprecationWarning``.  Use ``engine=``.
    engine:
        Engine selector (name, :class:`~repro.core.engine.EngineSpec` or
        :class:`~repro.core.engine.EngineConfig`).  ``"batched"`` coalesces
        the dry run into one RPC per (source, dest) rank pair, the push
        phase per (destination rank, q), and intersects each pull delivery
        in one batch-kernel call; ``"columnar"`` additionally vectorizes
        the push driver, delivers triangles as
        :class:`~repro.graph.metadata.TriangleBatch` columns, and coalesces
        the pull phase into one RPC per (owner, requester) pair;
        ``"columnar-pull"`` composes the batched push phases with the
        columnar pull phase.  All engines keep every communication total
        byte-identical (see the module docstring).

    backend:
        Execution backend: ``"simulated"`` (default) or ``"process"``
        (rank-sharded forked workers; bit-identical panels, byte-identical
        wire totals).  An :class:`~repro.core.engine.EngineConfig` with a
        set ``backend`` field overrides this keyword.
    workers:
        Worker-process count for ``backend="process"`` (``None`` = auto).
    kernel_tier:
        Intersection kernel tier (``"compiled"``/``"columnar"``/``"scalar"``;
        ``None``/``"auto"`` = best available, downgrading along
        ``compiled -> columnar -> scalar`` when a tier is unavailable).
    storage:
        CSR storage mode: ``None``/``"resident"`` or ``"mmap"`` (tracked
        memmap segments), or a :class:`~repro.graph.ooc.StorageConfig`;
        ``"mmap"`` requires the simulated backend.

    The returned report carries the three-phase breakdown (dry run / push /
    pull) and the number of pulled adjacency lists used for Table 3.
    """
    backend, workers = split_backend_selector(engine, backend, workers)
    kernel_tier, storage = split_execution_selector(engine, kernel_tier, storage)
    engine, kernel, callback_compute_units = split_engine_selector(
        engine, kernel, callback_compute_units
    )
    spec = resolve_engine(engine, batched=_handle_deprecated_batched(batched))
    request = SurveyRequest(
        dodgr=dodgr,
        callback=callback,
        algorithm="push_pull",
        kernel=kernel,
        reset_stats=reset_stats,
        graph_name=graph_name,
        callback_compute_units=callback_compute_units,
        backend=resolve_backend(backend),
        workers=workers,
        kernel_tier=kernel_tier,
        storage=storage,
    )
    return run_push_pull_survey(request, spec).report


def triangle_survey(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    algorithm: str = "push_pull",
    **kwargs: Any,
) -> SurveyReport:
    """Dispatch to the requested survey algorithm (``"push"`` or ``"push_pull"``).

    Remaining keyword arguments — including the ``engine=`` selector (an
    engine name or an :class:`~repro.core.engine.EngineConfig`) — are
    forwarded to the chosen survey function.  The deprecated ``batched=``
    boolean is translated here (warning attributed to the caller, not to
    this dispatcher) so the one-release back-compat notice reaches user
    code on every entry path.
    """
    if "batched" in kwargs:
        batched = _handle_deprecated_batched(kwargs.pop("batched"))
        if kwargs.get("engine") is None:
            kwargs["engine"] = "batched" if batched else "legacy"
    if algorithm == "push":
        from .survey import triangle_survey_push

        return triangle_survey_push(dodgr, callback, **kwargs)
    if algorithm == "push_pull":
        return triangle_survey_push_pull(dodgr, callback, **kwargs)
    raise ValueError(f"unknown survey algorithm {algorithm!r}")
