"""Push-Pull triangle survey (Section 4.4 of the paper).

The Push-Only algorithm can move enormous amounts of adjacency data towards
popular target vertices.  The Push-Pull optimisation adds a choice per
(source rank, target vertex) pair:

1. **Dry-run phase** — every rank walks its local pivots exactly like the
   push pass but *without sending adjacency data*: it only counts, per target
   vertex ``q``, how many candidate edges it would push to ``q`` in total
   across all of its local pivots, and remembers pointers to those pivots.
   It then sends one proposal message per (rank, ``q``) with the count.
   The owner of ``q`` compares the count against ``|Adj+(q)|``: if the
   adjacency list is smaller, it records the source rank in ``q``'s pull
   list; otherwise it replies telling the source rank to push as usual.
2. **Push phase** — identical to Push-Only, but sources skip every target
   whose adjacency list will be pulled instead.
3. **Pull phase** — owners send ``Adj^m_+(q)`` (coalesced: at most once per
   requesting rank) to the ranks on each pull list; the receiving rank runs
   the merge-path intersection locally for all of its pivots that wanted
   ``q``, and executes the callback there (all six metadata pieces are
   available: p's data is local, q's came with the pull).

Locally owned targets are always handled in the push phase — messages to
yourself never touch the wire, so pulling them cannot help.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from ..graph.dodgr import DODGraph, entry_key
from ..graph.metadata import TriangleMetadata
from .intersection import INTERSECTION_KERNELS
from .results import SurveyReport
from .survey import DEFAULT_CALLBACK_COMPUTE_UNITS, TriangleCallback, _candidate_key

__all__ = [
    "triangle_survey_push_pull",
    "triangle_survey",
    "DRY_RUN_PHASE",
    "PUSH_PHASE",
    "PULL_PHASE",
]

DRY_RUN_PHASE = "dry_run"
PUSH_PHASE = "push"
PULL_PHASE = "pull"


def triangle_survey_push_pull(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
) -> SurveyReport:
    """Run the Push-Pull triangle survey over ``dodgr``.

    Same callback contract as
    :func:`~repro.core.survey.triangle_survey_push`; see that function for
    parameter semantics.  The returned report carries the three-phase
    breakdown (dry run / push / pull) and the number of pulled adjacency
    lists used for Table 3.
    """
    world = dodgr.world
    nranks = world.nranks
    intersect = INTERSECTION_KERNELS[kernel]
    per_triangle_compute = callback_compute_units if callback is not None else 0
    if reset_stats:
        world.reset_stats()

    # Per-rank driver-side state for this run -------------------------------
    # pivots_by_target[rank][q] = list of (pivot vertex, index of q in its adj)
    pivots_by_target: List[Dict[Any, List[Tuple[Any, int]]]] = [dict() for _ in range(nranks)]
    # push_targets[rank] = set of target vertices this rank was told to push to
    push_targets: List[Set[Any]] = [set() for _ in range(nranks)]
    # pull_lists[rank][q] = list of source ranks that should receive Adj^m_+(q)
    pull_lists: List[Dict[Any, List[int]]] = [dict() for _ in range(nranks)]

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _propose_handler(ctx, q: Any, source_rank: int, candidate_count: int) -> None:
        """Owner of q decides: pull (remember source) or advise push."""
        record = dodgr.local_store(ctx).get(q)
        out_degree = len(record["adj"]) if record is not None else 0
        if record is not None and out_degree < candidate_count:
            pull_lists[ctx.rank].setdefault(q, []).append(source_rank)
        else:
            ctx.async_call(source_rank, _advise_push_handler, q)

    def _advise_push_handler(ctx, q: Any) -> None:
        push_targets[ctx.rank].add(q)

    def _intersect_handler(
        ctx, q: Any, p: Any, meta_p: Any, meta_pq: Any, candidates: List[tuple]
    ) -> None:
        """Push-phase wedge check at the owner of q (same as Push-Only)."""
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, _candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p, q=q, r=r,
                        meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                        meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                    ),
                )

    def _pull_deliver_handler(
        ctx, q: Any, meta_q: Any, adjacency_q: List[tuple]
    ) -> None:
        """Pull-phase: Adj^m_+(q) arrives at a source rank; intersect locally."""
        ctx.add_counter("vertices_pulled", 1)
        store = dodgr.local_store(ctx)
        wanting_pivots = pivots_by_target[ctx.rank].get(q, ())
        for p, q_index in wanting_pivots:
            record = store.get(p)
            if record is None:
                continue
            adjacency_p = record["adj"]
            meta_p = record["meta"]
            meta_pq = adjacency_p[q_index][2]
            suffix = adjacency_p[q_index + 1 :]
            ctx.add_counter("wedge_checks", len(suffix))
            result = intersect(suffix, adjacency_q, entry_key, _candidate_key)
            ctx.add_compute(result.comparisons)
            for suff_idx, pulled_idx in result.matches:
                r, _d_r, meta_pr, meta_r = suffix[suff_idx]
                meta_qr = adjacency_q[pulled_idx][2]
                ctx.add_counter("triangles_found", 1)
                if callback is not None:
                    ctx.add_compute(per_triangle_compute)
                    callback(
                        ctx,
                        TriangleMetadata(
                            p=p, q=q, r=r,
                            meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                            meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                        ),
                    )

    h_propose = world.register_handler(_propose_handler)
    _h_advise = world.register_handler(_advise_push_handler)
    h_intersect = world.register_handler(_intersect_handler)
    h_pull_deliver = world.register_handler(_pull_deliver_handler)

    host_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Phase 1: Push vs Pull dry run.
    # ------------------------------------------------------------------
    world.begin_phase(DRY_RUN_PHASE)
    for ctx in world.ranks:
        rank = ctx.rank
        store = dodgr.local_store(ctx)
        candidate_totals: Dict[Any, int] = {}
        targets = pivots_by_target[rank]
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            for i in range(len(adjacency) - 1):
                q = adjacency[i][0]
                suffix_len = len(adjacency) - 1 - i
                targets.setdefault(q, []).append((p, i))
                if dodgr.owner(q) == rank:
                    # Local targets are always pushed (zero wire cost).
                    push_targets[rank].add(q)
                else:
                    candidate_totals[q] = candidate_totals.get(q, 0) + suffix_len
        for q, total in candidate_totals.items():
            ctx.async_call(dodgr.owner(q), h_propose, q, rank, total)
    world.barrier()

    # ------------------------------------------------------------------
    # Phase 2: Push phase (skip targets that will be pulled).
    # ------------------------------------------------------------------
    world.begin_phase(PUSH_PHASE)
    for ctx in world.ranks:
        rank = ctx.rank
        store = dodgr.local_store(ctx)
        allowed = push_targets[rank]
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            meta_p = record["meta"]
            for i in range(len(adjacency) - 1):
                q, _d_q, meta_pq, _meta_q = adjacency[i]
                if q not in allowed:
                    continue
                candidates = [
                    (entry[0], entry[1], entry[2]) for entry in adjacency[i + 1 :]
                ]
                ctx.async_call(dodgr.owner(q), h_intersect, q, p, meta_p, meta_pq, candidates)
    world.barrier()

    # ------------------------------------------------------------------
    # Phase 3: Pull phase (owners broadcast adjacency lists, coalesced).
    # ------------------------------------------------------------------
    world.begin_phase(PULL_PHASE)
    for ctx in world.ranks:
        rank = ctx.rank
        store = dodgr.local_store(ctx)
        for q, requesters in pull_lists[rank].items():
            record = store.get(q)
            if record is None:
                continue
            meta_q = record["meta"]
            # The pulled payload omits meta(r): the requesting rank stores
            # meta(r) locally for every r in its pivots' adjacency lists.
            payload = [(entry[0], entry[1], entry[2]) for entry in record["adj"]]
            for source_rank in requesters:
                ctx.async_call(source_rank, h_pull_deliver, q, meta_q, payload)
    world.barrier()

    host_seconds = time.perf_counter() - host_start
    phases = [DRY_RUN_PHASE, PUSH_PHASE, PULL_PHASE]
    simulated = world.simulated_time(phases=phases)
    return SurveyReport.from_world_stats(
        algorithm="push_pull",
        graph_name=graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )


def triangle_survey(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    algorithm: str = "push_pull",
    **kwargs: Any,
) -> SurveyReport:
    """Dispatch to the requested survey algorithm (``"push"`` or ``"push_pull"``)."""
    if algorithm == "push":
        from .survey import triangle_survey_push

        return triangle_survey_push(dodgr, callback, **kwargs)
    if algorithm == "push_pull":
        return triangle_survey_push_pull(dodgr, callback, **kwargs)
    raise ValueError(f"unknown survey algorithm {algorithm!r}")
