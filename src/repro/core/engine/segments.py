"""Segment (ragged-array) utilities shared by every survey engine.

The batched and columnar drivers all speak the same CSR/ragged dialect:
a flat array of values plus an ``offsets`` array such that segment ``w``
occupies ``flat[offsets[w]:offsets[w + 1]]``.  Before the engine layer
existed these helpers were duplicated across ``core/survey.py``
(``_concat_segments``) and ``core/incremental.py`` (``_ragged_gather``);
this module is now the single home for both.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = ["concat_segments", "ragged_gather"]


def concat_segments(ids, starts: Sequence[int], ends: Sequence[int]):
    """Concatenate ``ids[s:e]`` slices into one flat array plus offsets.

    The CSR/ragged layout consumed by the batch kernels: segment ``w``
    occupies ``flat[offsets[w]:offsets[w + 1]]``.  Falls back to plain
    lists when NumPy is unavailable (the scalar batch kernels accept
    either).
    """
    if _np is not None:
        starts_arr = _np.asarray(starts, dtype=_np.int64)
        lengths = _np.asarray(ends, dtype=_np.int64) - starts_arr
        index, offsets = ragged_gather(starts_arr, lengths)
        if index.size == 0:
            return index, offsets
        return _np.asarray(ids)[index], offsets
    flat: List[int] = []
    offsets_list = [0]
    for start, end in zip(starts, ends):
        flat.extend(ids[start:end])
        offsets_list.append(len(flat))
    return flat, offsets_list


def ragged_gather(starts, lengths) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """Flat gather index of ragged segments ``[starts[i], starts[i]+lengths[i])``.

    Returns ``(gather, offsets)`` where ``gather`` indexes the source array
    and ``offsets`` delimits the segments in the gathered result.  NumPy
    only — the columnar drivers that need it never run without it (the
    registry downgrades them first).
    """
    offsets = _np.concatenate(([0], _np.cumsum(lengths)))
    total = int(offsets[-1])
    if total == 0:
        return _np.empty(0, dtype=_np.int64), offsets
    return (
        _np.arange(total, dtype=_np.int64) + _np.repeat(starts - offsets[:-1], lengths)
    ), offsets
