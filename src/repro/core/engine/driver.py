"""Shared driver core: the push-side machinery every engine composes.

One survey algorithm, interchangeable communication strategies — this
module holds the strategy implementations the :class:`~repro.core.engine.registry.EngineSpec`
table composes:

* **handler factories** build the owner-side RPC handler that intersects a
  candidate stream against ``Adj^m_+(q)`` and delivers the closing
  triangles to the user callback (scalar) or its ``callback_batch``
  counterpart (columnar :class:`~repro.graph.metadata.TriangleBatch`);
* **drivers** walk one rank's pivots and generate its candidate stream at
  the engine's granularity — one RPC per wedge (legacy), per (destination
  rank, target vertex) group (batched), or per (source rank, destination
  rank) pair (columnar) — while accounting every *replaced* legacy message
  at its exact serialized size (``account_rpc``/``account_rpc_bulk``
  against the real buffer bank), which is what keeps Table 4 byte-identical
  across engines.

The style-keyed facades :func:`make_push_intersect_handler` and
:func:`drive_push` are what the engine runners call; everything else is the
composition material.  Before the engine layer existed this code lived in
``core/survey.py`` with near-copies of the legacy handler and driver in
``core/push_pull.py`` — those copies are gone.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...graph.degree import order_key
from ...graph.dodgr import CSRAdjacency, DODGraph, entry_key
from ...graph.ooc import stage_send_columns
from ...graph.metadata import TriangleBatch, TriangleMetadata
from ...runtime.serialization import serialized_size, uvarint_size, uvarint_size_array
from ..intersection import (
    INTERSECTION_KERNELS,
    RowAdjacency,
    batch_kernel as select_batch_kernel,
    row_kernel as select_row_kernel,
)
from .request import TriangleCallback
from .segments import concat_segments

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = [
    "candidate_key",
    "row_adjacency",
    "legacy_push_payload_overhead",
    "resolve_batch_callback",
    "deliver_batch",
    "columnar_push_batch",
    "make_legacy_intersect_handler",
    "make_batched_intersect_handler",
    "make_columnar_intersect_handler",
    "make_push_intersect_handler",
    "drive_legacy_push",
    "drive_batched_push",
    "drive_columnar_push",
    "drive_push",
    "PUSH_STYLES",
]

#: The push-side strategies the engine registry can compose.
PUSH_STYLES = ("legacy", "batched", "columnar")


def candidate_key(candidate: tuple) -> tuple:
    """Sort key of a pushed candidate entry (r, d_r, meta_pr[, meta_r])."""
    return order_key(candidate[0], candidate[1])


def resolve_batch_callback(callback: Optional["TriangleCallback"]):
    """The batch counterpart of ``callback``, or None for scalar-only callbacks.

    Two spellings engage columnar delivery: a ``callback_batch`` attribute on
    the callable itself, or — the reducer convention of
    :mod:`repro.core.callbacks` — passing a bound ``reducer.callback`` whose
    owner also defines ``callback_batch``.  Anything else (plain lambdas,
    wrapped callables) runs through the scalar fallback, one
    :class:`~repro.graph.metadata.TriangleMetadata` at a time.

    A subclass that overrides ``callback`` without overriding
    ``callback_batch`` does NOT engage the inherited batch method: the two
    entry points are a contract pair, and silently running the base class's
    batch aggregation against a specialised scalar callback would change
    results.  The walk below finds whichever of the pair is defined closest
    to the instance's class; a scalar override at or below the batch
    definition forces the scalar fallback.
    """
    if callback is None:
        return None
    batch = getattr(callback, "callback_batch", None)
    if callable(batch):
        return batch
    owner = getattr(callback, "__self__", None)
    if owner is not None and getattr(owner, "callback", None) == callback:
        for klass in type(owner).__mro__:
            if "callback_batch" in klass.__dict__:
                batch = getattr(owner, "callback_batch", None)
                return batch if callable(batch) else None
            if "callback" in klass.__dict__:
                return None
    return None


def row_adjacency(csr: CSRAdjacency, order_count: int) -> RowAdjacency:
    """The CSR's cached :class:`RowAdjacency` view for the row kernels."""
    cached = csr.row_adj_cache
    if cached is None:
        indptr = csr.columns().indptr if _np is not None else csr.indptr
        cached = RowAdjacency(csr.tgt_ids, indptr, order_count)
        csr.row_adj_cache = cached
    return cached


def legacy_push_payload_overhead(handler_id: int) -> int:
    """Fixed serialized bytes of a legacy push RPC around its variable parts.

    A legacy wedge message is ``dumps((handler_id, [q, p, meta_p, meta_pq,
    candidates]))``: 2 framing bytes for the outer pair, the handler id, 2
    framing bytes for the argument list, and 1 tag byte for the candidate
    list (whose length prefix and entries are accounted per wedge).
    """
    return 5 + serialized_size(handler_id)


# ---------------------------------------------------------------------------
# Legacy engine: one sized RPC per wedge, scalar intersection
# ---------------------------------------------------------------------------


def make_legacy_intersect_handler(
    dodgr: DODGraph,
    intersect,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
):
    """Build the owner-side handler of one per-wedge candidate push.

    Executed on Rank(q): intersect the pushed candidates with ``Adj^m_+(q)``
    and run the callback for every match.  Before the engine layer this
    closure was written out twice — once in the Push-Only driver, once in
    the Push-Pull push phase.
    """

    def _intersect_handler(
        ctx,
        q: Any,
        p: Any,
        meta_p: Any,
        meta_pq: Any,
        candidates: List[tuple],
    ) -> None:
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p,
                        q=q,
                        r=r,
                        meta_p=meta_p,
                        meta_q=meta_q,
                        meta_r=meta_r,
                        meta_pq=meta_pq,
                        meta_pr=meta_pr,
                        meta_qr=meta_qr,
                    ),
                )

    return _intersect_handler


def drive_legacy_push(ctx, dodgr: DODGraph, handler, allowed=None) -> None:
    """Walk one rank's pivots, one sized RPC per wedge (the scalar reference).

    ``allowed`` restricts targets (the Push-Pull push phase skips targets
    that will be pulled); ``None`` pushes to every target.
    """
    store = dodgr.local_store(ctx)
    for p, record in store.items():
        adjacency = record["adj"]
        if len(adjacency) < 2:
            continue
        meta_p = record["meta"]
        for i in range(len(adjacency) - 1):
            q, _d_q, meta_pq, _meta_q = adjacency[i]
            if allowed is not None and q not in allowed:
                continue
            # Candidate entries drop meta(r): Rank(q) already stores
            # meta(r) in Adj^m_+(q) whenever Δpqr exists (Section 4.3).
            candidates = [
                (entry[0], entry[1], entry[2]) for entry in adjacency[i + 1 :]
            ]
            # Sized delivery: exact legacy wire accounting, no codec run
            # for what is (in-process) an accounting-only payload.
            ctx.async_call_sized(dodgr.owner(q), handler, q, p, meta_p, meta_pq, candidates)


# ---------------------------------------------------------------------------
# Batched engine internals
# ---------------------------------------------------------------------------


def make_batched_intersect_handler(
    dodgr: DODGraph,
    batch_kernel,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
):
    """Build the owner-side handler of one batched candidate push.

    The handler receives every wedge a source rank generated for one target
    vertex ``q``: ``rows``/``qpositions`` locate the pivots and their ``q``
    entries inside the *source* rank's :class:`CSRAdjacency`, and each
    pivot's candidate suffix is the edge range after ``qpositions[w]``.  All
    suffixes are intersected against ``Adj^m_+(q)`` in one batch-kernel
    call; matches close triangles exactly as in the legacy handler.
    """

    def _batched_intersect_handler(
        ctx,
        q: Any,
        src_csr: CSRAdjacency,
        rows: List[int],
        qpositions: List[int],
    ) -> None:
        starts = [pos + 1 for pos in qpositions]
        ends = [src_csr.indptr[row + 1] for row in rows]
        ctx.add_counter(
            "wedge_checks", sum(end - start for start, end in zip(starts, ends))
        )
        dest_csr = dodgr.csr(ctx)
        q_row = dest_csr.row_of(q)
        if q_row is None:
            return
        adj_lo, adj_hi = dest_csr.row_slice(q_row)
        candidate_ids, offsets = concat_segments(src_csr.tgt_ids, starts, ends)
        result = batch_kernel(candidate_ids, offsets, dest_csr.tgt_ids[adj_lo:adj_hi])
        ctx.add_compute(result.comparisons)
        if not result.matches:
            return
        # Counter totals are phase-aggregate, so one bulk update per batch
        # replaces two Python calls per triangle.
        ctx.add_counter("triangles_found", len(result.matches))
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * len(result.matches))
        meta_q = dest_csr.row_meta[q_row]
        for wedge, cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr, _ = src_csr.entries[starts[wedge] + cand_idx]
            _, _, meta_qr, meta_r = dest_csr.entries[adj_lo + adj_idx]
            row = rows[wedge]
            callback(
                ctx,
                TriangleMetadata(
                    p=src_csr.row_vertices[row],
                    q=q,
                    r=r,
                    meta_p=src_csr.row_meta[row],
                    meta_q=meta_q,
                    meta_r=meta_r,
                    meta_pq=src_csr.entries[qpositions[wedge]][2],
                    meta_pr=meta_pr,
                    meta_qr=meta_qr,
                ),
            )

    return _batched_intersect_handler


def drive_batched_push(
    ctx,
    csr: CSRAdjacency,
    handler,
    payload_overhead: int,
    allowed=None,
) -> None:
    """Walk one rank's pivots, accounting and coalescing its candidate pushes.

    Every wedge is accounted (in legacy iteration order, so buffer flush
    boundaries replay exactly) via ``ctx.account_rpc`` with the precise
    serialized size of the per-wedge message it replaces, then appended to
    its ``(destination rank, q)`` group; one batched RPC per group follows.
    ``allowed`` restricts targets (the Push-Pull push phase skips targets
    that will be pulled); ``None`` pushes to every target.
    """
    groups: Dict[Tuple[int, Any], Tuple[List[int], List[int], List[int]]] = {}
    indptr = csr.indptr
    entries = csr.entries
    owners = csr.tgt_owner
    tgt_sizes = csr.tgt_wire_sizes
    row_sizes = csr.row_wire_sizes
    for row in range(csr.num_rows):
        lo, hi = indptr[row], indptr[row + 1]
        if hi - lo < 2:
            continue
        row_overhead = payload_overhead + row_sizes[row]
        for pos in range(lo, hi - 1):
            q = entries[pos][0]
            if allowed is not None and q not in allowed:
                continue
            dest = owners[pos]
            size = (
                row_overhead
                + tgt_sizes[pos]
                + uvarint_size(hi - 1 - pos)
                + csr.suffix_wire_bytes(pos, hi)
            )
            ctx.account_rpc(dest, size)
            group = groups.get((dest, q))
            if group is None:
                groups[(dest, q)] = group = ([], [], [0])
            group[0].append(row)
            group[1].append(pos)
            group[2][0] += size
    for (dest, q), (rows, qpositions, (group_bytes,)) in groups.items():
        ctx.async_call_batched(
            dest,
            handler,
            q,
            csr,
            rows,
            qpositions,
            virtual_rpcs=len(rows),
            virtual_bytes=group_bytes,
        )


# ---------------------------------------------------------------------------
# Columnar engine internals
# ---------------------------------------------------------------------------


def columnar_push_batch(
    src_csr: CSRAdjacency,
    dest_csr: CSRAdjacency,
    rows,
    qpositions,
    q_rows,
    flat_src_pos,
    result,
) -> TriangleBatch:
    """Wrap one columnar intersect result as a lazy :class:`TriangleBatch`.

    Only the small per-match index lists are materialised eagerly; each
    metadata column decodes from the CSR entry tuples on first read.
    """
    wedge = result.seg
    src_pos = flat_src_pos[result.cand_pos]
    if hasattr(wedge, "tolist"):
        p_rows = rows[wedge].tolist()
        q_pos = qpositions[wedge].tolist()
        qrow_list = q_rows[wedge].tolist()
        src_pos = src_pos.tolist()
        adj_pos = result.adj_pos.tolist()
    else:  # scalar row-kernel results carry plain lists (small-input cutoff)
        p_rows = [rows[w] for w in wedge]
        q_pos = [qpositions[w] for w in wedge]
        qrow_list = [q_rows[w] for w in wedge]
        src_pos = list(src_pos)
        adj_pos = list(result.adj_pos)
    src_entries = src_csr.entries
    dest_entries = dest_csr.entries
    builders = {
        "p": lambda: [src_csr.row_vertices[row] for row in p_rows],
        "meta_p": lambda: [src_csr.row_meta[row] for row in p_rows],
        "q": lambda: [dest_csr.row_vertices[row] for row in qrow_list],
        "meta_q": lambda: [dest_csr.row_meta[row] for row in qrow_list],
        "meta_pq": lambda: [src_entries[pos][2] for pos in q_pos],
        "r": lambda: [src_entries[pos][0] for pos in src_pos],
        "meta_pr": lambda: [src_entries[pos][2] for pos in src_pos],
        "meta_qr": lambda: [dest_entries[pos][2] for pos in adj_pos],
        "meta_r": lambda: [dest_entries[pos][3] for pos in adj_pos],
    }
    return TriangleBatch(len(src_pos), builders)


def deliver_batch(ctx, batch, callback, batch_callback) -> None:
    """Hand a triangle batch to the reducer: columnar when it can, scalar else."""
    if batch_callback is not None:
        batch_callback(ctx, batch)
    else:
        for tri in batch.triangles():
            callback(ctx, tri)


def make_columnar_intersect_handler(
    dodgr: DODGraph,
    row_kernel,
    callback: Optional["TriangleCallback"],
    batch_callback,
    per_triangle_compute: int,
):
    """Build the owner-side handler of one columnar candidate push.

    The handler receives *every* wedge a source rank generated for targets
    this rank owns — one RPC per (source, destination) pair — as two index
    arrays into the source's :class:`CSRAdjacency`.  All candidate suffixes
    are intersected against their respective ``Adj^m_+(q)`` rows in one
    row-kernel call, and the resulting triangles are delivered to the
    reducer as one :class:`~repro.graph.metadata.TriangleBatch`.
    """

    def _columnar_intersect_handler(ctx, src_csr: CSRAdjacency, rows, qpositions) -> None:
        src_cols = src_csr.columns()
        starts = qpositions + 1
        ends = src_cols.indptr[rows + 1]
        seg_lengths = ends - starts
        total = int(seg_lengths.sum())
        ctx.add_counter("wedge_checks", total)
        dest_csr = dodgr.csr(ctx)
        q_rows = dodgr.rows_by_order_id()[src_csr.tgt_ids[qpositions]]
        offsets = _np.concatenate(([0], _np.cumsum(seg_lengths)))
        flat_src_pos = _np.arange(total, dtype=_np.int64) + _np.repeat(
            starts - offsets[:-1], seg_lengths
        )
        candidate_ids = src_csr.tgt_ids[flat_src_pos]
        adjacency = row_adjacency(dest_csr, dodgr.order_count())
        result = row_kernel(candidate_ids, offsets, q_rows, adjacency)
        ctx.add_compute(int(result.comparisons))
        matches = len(result)
        if not matches:
            return
        ctx.add_counter("triangles_found", matches)
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * matches)
        batch = columnar_push_batch(
            src_csr, dest_csr, rows, qpositions, q_rows, flat_src_pos, result
        )
        deliver_batch(ctx, batch, callback, batch_callback)

    return _columnar_intersect_handler


def drive_columnar_push(
    ctx,
    dodgr: DODGraph,
    csr: CSRAdjacency,
    handler,
    payload_overhead: int,
    allowed_ids=None,
) -> None:
    """Array-native driver: account and coalesce one rank's candidate pushes.

    Builds the rank's full wedge stream — (pivot row, q position) pairs in
    legacy iteration order — as index arrays, computes every replaced
    message's exact serialized size columnar-wise, accounts the stream
    through :meth:`~repro.runtime.world.RankContext.account_rpc_bulk` (same
    counters and buffer flush boundaries as the per-wedge walk), and fires
    one batched RPC per destination rank.  ``allowed_ids`` restricts targets
    to the given dense order-ids (the Push-Pull push phase); ``None`` pushes
    to every target.
    """
    cols = csr.columns()
    indptr = cols.indptr
    out_degree = indptr[1:] - indptr[:-1]
    wedge_counts = _np.where(out_degree >= 2, out_degree - 1, 0)
    total = int(wedge_counts.sum())
    if total == 0:
        return
    rows = _np.repeat(_np.arange(csr.num_rows, dtype=_np.int64), wedge_counts)
    qpositions = (
        _np.arange(total, dtype=_np.int64)
        - _np.repeat(_np.cumsum(wedge_counts) - wedge_counts, wedge_counts)
        + _np.repeat(indptr[:-1], wedge_counts)
    )
    if allowed_ids is not None:
        mask = _np.isin(csr.tgt_ids[qpositions], allowed_ids)
        rows = rows[mask]
        qpositions = qpositions[mask]
        if rows.size == 0:
            return
    row_end = indptr[rows + 1]
    dests = cols.tgt_owner[qpositions]
    sizes = (
        payload_overhead
        + cols.row_wire[rows]
        + cols.tgt_wire[qpositions]
        + uvarint_size_array(row_end - 1 - qpositions)
        + cols.cand_cumsum[row_end]
        - cols.cand_cumsum[qpositions + 1]
    )
    ctx.account_rpc_bulk(dests, sizes)
    order = _np.argsort(dests, kind="stable")
    dests_sorted = dests[order]
    unique_dests, group_starts = _np.unique(dests_sorted, return_index=True)
    bounds = group_starts.tolist() + [dests_sorted.size]
    rows_sorted = rows[order]
    qpos_sorted = qpositions[order]
    sizes_sorted = sizes[order]
    # Candidate-stream chunking (out-of-core storage): cap the number of
    # candidates any single batched delivery carries, so the owner-side
    # handler's transient arrays stay within the configured memory budget
    # while the spilled CSR columns page in from disk.  Chunks are cut at
    # wedge boundaries in the same stable destination order, so per-dest
    # FIFO delivery, every counter, and the virtual rpc/byte sums are
    # identical to the single-call form (``chunk=None`` — resident storage
    # — reproduces it exactly).
    chunk = dodgr.chunk_candidates()
    cand_cumsum = None
    if chunk is not None:
        cand_cumsum = _np.cumsum((row_end - 1 - qpositions)[order])
        # The payload slices below stay enqueued until the barrier delivers
        # them; staging the sorted columns in the snapshot's disk-backed
        # scratch keeps that retained set out of process memory (the
        # in-memory arrays die when this drive returns).
        rows_sorted, qpos_sorted = stage_send_columns(csr, rows_sorted, qpos_sorted)
    for g, dest in enumerate(unique_dests.tolist()):
        lo, hi = bounds[g], bounds[g + 1]
        start = lo
        while start < hi:
            if chunk is None:
                stop = hi
            else:
                base = int(cand_cumsum[start - 1]) if start else 0
                stop = int(_np.searchsorted(cand_cumsum, base + chunk, side="right"))
                stop = max(stop, start + 1)  # an oversize wedge still ships
                stop = min(stop, hi)
            ctx.async_call_batched(
                dest,
                handler,
                csr,
                rows_sorted[start:stop],
                qpos_sorted[start:stop],
                virtual_rpcs=stop - start,
                virtual_bytes=int(sizes_sorted[start:stop].sum()),
            )
            start = stop


# ---------------------------------------------------------------------------
# Style-keyed facades: what the engine runners actually call
# ---------------------------------------------------------------------------


def make_push_intersect_handler(
    style: str,
    dodgr: DODGraph,
    kernel: str,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
    kernel_tier: Optional[str] = None,
):
    """Build the push-phase intersect handler for an engine's ``push_style``.

    ``kernel_tier`` picks the batch/row kernel implementation tier
    (``compiled``/``columnar``/``scalar``; ``None`` = best available) —
    every tier is interchangeable under the equivalence contract, so this
    only changes host speed.  The legacy style has a single (scalar)
    implementation and ignores the tier.
    """
    if style == "batched":
        return make_batched_intersect_handler(
            dodgr, select_batch_kernel(kernel, kernel_tier), callback, per_triangle_compute
        )
    if style == "columnar":
        return make_columnar_intersect_handler(
            dodgr,
            select_row_kernel(kernel, kernel_tier),
            callback,
            resolve_batch_callback(callback),
            per_triangle_compute,
        )
    if style != "legacy":
        raise ValueError(f"unknown push style {style!r}; known: {PUSH_STYLES}")
    return make_legacy_intersect_handler(
        dodgr, INTERSECTION_KERNELS[kernel], callback, per_triangle_compute
    )


def drive_push(style: str, ctx, dodgr: DODGraph, handler, allowed=None) -> None:
    """Run one rank's push drive at the engine's granularity.

    ``allowed`` is the rank's push-target set (Push-Pull) or ``None`` for
    everything (Push-Only); the columnar driver converts it to dense
    order-ids itself.
    """
    if style == "columnar":
        allowed_ids = None
        if allowed is not None:
            order_ids = dodgr.order_ids()
            allowed_ids = _np.fromiter(
                (order_ids[q] for q in allowed), dtype=_np.int64, count=len(allowed)
            )
        drive_columnar_push(
            ctx,
            dodgr,
            dodgr.csr(ctx),
            handler,
            legacy_push_payload_overhead(handler.handler_id),
            allowed_ids=allowed_ids,
        )
    elif style == "batched":
        drive_batched_push(
            ctx,
            dodgr.csr(ctx),
            handler,
            legacy_push_payload_overhead(handler.handler_id),
            allowed=allowed,
        )
    elif style == "legacy":
        drive_legacy_push(ctx, dodgr, handler, allowed=allowed)
    else:
        raise ValueError(f"unknown push style {style!r}; known: {PUSH_STYLES}")
