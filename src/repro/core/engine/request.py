"""Survey request/result pair and the unified engine selector.

Every survey entry point — :func:`repro.core.survey.triangle_survey_push`,
:func:`repro.core.push_pull.triangle_survey_push_pull`,
:func:`repro.core.incremental.incremental_triangle_survey` — normalises its
arguments into a :class:`SurveyRequest` and hands it to the engine layer,
which returns a :class:`SurveyResult` wrapping the familiar
:class:`~repro.core.results.SurveyReport` plus the resolved engine name.

:class:`EngineConfig` is the *caller-facing* selector: a single value that
travels unchanged through ``analysis/*``, ``bench/*``,
:class:`~repro.core.incremental.StreamingSurvey` and the benchmark CLIs.
Anywhere an ``engine=`` keyword accepts a string name it also accepts an
``EngineConfig``, which additionally pins the intersection kernel and the
per-triangle callback cost — so one object selects the execution strategy
everywhere, instead of three loose keywords re-declared at every layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional, Tuple

__all__ = [
    "TriangleCallback",
    "EngineSelector",
    "DEFAULT_CALLBACK_COMPUTE_UNITS",
    "PUSH_PHASE",
    "DRY_RUN_PHASE",
    "PULL_PHASE",
    "DELTA_PUSH_PHASE",
    "EngineConfig",
    "SurveyRequest",
    "SurveyResult",
    "split_engine_selector",
    "split_backend_selector",
    "split_execution_selector",
    "default_engine",
]

#: Type of a survey callback: ``callback(ctx, tri)`` executed on the rank
#: where the triangle is identified.
TriangleCallback = Callable[[Any, Any], None]

#: What an ``engine=`` keyword accepts anywhere in the system: ``None`` (the
#: entry point's default), a registered engine name, an ``EngineSpec``, or
#: an :class:`EngineConfig`.
EngineSelector = Any

#: Abstract compute units charged per triangle for executing a user callback
#: on its metadata (hashing labels, computing logarithms, updating counting-set
#: caches).  Calibrated so that a metadata survey with a non-trivial callback
#: costs roughly twice the throughput of bare counting on R-MAT weak-scaling
#: inputs, matching the overhead the paper reports in Section 5.9.  Charged
#: only when a callback is supplied; pass ``callback_compute_units=0`` to
#: model a free callback.
DEFAULT_CALLBACK_COMPUTE_UNITS = 10

PUSH_PHASE = "push"
DRY_RUN_PHASE = "dry_run"
PULL_PHASE = "pull"
DELTA_PUSH_PHASE = "delta_push"


@dataclass(frozen=True)
class EngineConfig:
    """One value that selects the survey execution strategy everywhere.

    Parameters
    ----------
    engine:
        Registered engine name (``"legacy"``, ``"batched"``, ``"columnar"``,
        ``"columnar-pull"``, or any name added through
        :func:`~repro.core.engine.register_engine`).  ``None`` keeps each
        entry point's documented default.
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); ``None`` keeps the entry point's ``kernel=`` argument
        (default merge-path).
    callback_compute_units:
        Abstract compute units charged per triangle when a callback is
        supplied; ``None`` keeps the entry point's default
        (:data:`DEFAULT_CALLBACK_COMPUTE_UNITS`).
    backend:
        Execution backend (``"simulated"`` or ``"process"``); ``None`` keeps
        the entry point's ``backend=`` argument (default simulated).
    workers:
        Worker-process count for the process backend; ``None`` keeps the
        entry point's ``workers=`` argument (default: capped at four, the
        host's core count and the rank count).
    kernel_tier:
        Intersection kernel tier (``"compiled"``, ``"columnar"``,
        ``"scalar"`` or ``"auto"``; see
        :data:`repro.core.intersection.KERNEL_TIERS`).  ``None``/``"auto"``
        keeps the engine's best available tier; unavailable tiers downgrade
        along the declared ``compiled -> columnar -> scalar`` chain.
    storage:
        CSR storage mode (``"resident"`` or ``"mmap"``), or a
        :class:`repro.graph.ooc.StorageConfig` pinning a memory budget and
        segment directory.  ``None`` keeps the entry point's ``storage=``
        argument (default resident).
    """

    engine: Optional[str] = None
    kernel: Optional[str] = None
    callback_compute_units: Optional[int] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    kernel_tier: Optional[str] = None
    storage: Optional[Any] = None

    @classmethod
    def coerce(cls, value: Any) -> "EngineConfig":
        """Normalise ``None`` / engine-name string / EngineConfig to a config."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(engine=value)
        from .registry import EngineSpec  # deferred: registry imports request

        if isinstance(value, EngineSpec):
            return cls(engine=value.name)
        raise TypeError(
            f"engine selector must be None, a registered engine name, an "
            f"EngineSpec or an EngineConfig; got {value!r}"
        )


def split_engine_selector(
    engine: Any, kernel: str, callback_compute_units: int
) -> Tuple[Optional[str], str, int]:
    """Resolve an ``engine=`` argument against an entry point's loose keywords.

    ``engine`` may be ``None``, a registered engine name, an ``EngineSpec``
    or an :class:`EngineConfig`.  When it is an ``EngineConfig`` its *set*
    fields win: its kernel (when not ``None``) replaces the entry point's
    ``kernel`` argument, its ``callback_compute_units`` (when not ``None``)
    the entry point's.  Returns the flattened
    ``(engine_name, kernel, callback_compute_units)``.
    """
    if engine is None or isinstance(engine, str):
        return engine, kernel, callback_compute_units
    config = EngineConfig.coerce(engine)
    if config.callback_compute_units is not None:
        callback_compute_units = config.callback_compute_units
    return config.engine, config.kernel or kernel, callback_compute_units


def split_backend_selector(
    engine: Any, backend: Optional[str], workers: Optional[int]
) -> Tuple[Optional[str], Optional[int]]:
    """Resolve ``backend=``/``workers=`` keywords against an engine selector.

    Mirrors :func:`split_engine_selector`: when ``engine`` is an
    :class:`EngineConfig` its *set* backend fields win over the entry
    point's loose keywords, so one config object can pin the whole
    execution strategy (engine, kernel, backend, worker count) everywhere
    an ``engine=`` keyword travels.
    """
    if isinstance(engine, EngineConfig):
        if engine.backend is not None:
            backend = engine.backend
        if engine.workers is not None:
            workers = engine.workers
    return backend, workers


def split_execution_selector(
    engine: Any, kernel_tier: Optional[str], storage: Any
) -> Tuple[Optional[str], Any]:
    """Resolve ``kernel_tier=``/``storage=`` keywords against an engine selector.

    Mirrors :func:`split_backend_selector` for the execution axes added by
    the out-of-core work: when ``engine`` is an :class:`EngineConfig` its
    *set* ``kernel_tier``/``storage`` fields win over the entry point's
    loose keywords.
    """
    if isinstance(engine, EngineConfig):
        if engine.kernel_tier is not None:
            kernel_tier = engine.kernel_tier
        if engine.storage is not None:
            storage = engine.storage
    return kernel_tier, storage


def default_engine(engine: "EngineSelector", default: str) -> "EngineSelector":
    """Fill an unset engine name with a layer's documented default.

    Layers whose default engine is not the core entry points' legacy —
    ``analysis/*`` and the incremental path default to columnar — apply
    this before forwarding, so ``engine=None`` *and* an
    :class:`EngineConfig` whose ``engine`` field is unset (the "pin just
    the kernel" use) both keep that layer's default instead of silently
    resolving to legacy downstream.
    """
    if engine is None:
        return default
    if isinstance(engine, EngineConfig) and engine.engine is None:
        return replace(engine, engine=default)
    return engine


@dataclass
class SurveyRequest:
    """Everything an execution engine needs to run one survey.

    The entry points in :mod:`repro.core.survey` and
    :mod:`repro.core.push_pull` build one of these from their keyword
    surface; engine runners consume it without re-parsing loose arguments.
    """

    dodgr: Any
    callback: Optional[TriangleCallback] = None
    algorithm: str = "push_pull"
    kernel: str = "merge_path"
    reset_stats: bool = True
    graph_name: Optional[str] = None
    #: Push-only surveys accumulate their counters under this phase name.
    phase_name: str = PUSH_PHASE
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS
    #: Execution backend (:data:`repro.core.engine.registry.BACKENDS`).
    backend: str = "simulated"
    #: Worker-process count for the process backend (``None`` = auto).
    workers: Optional[int] = None
    #: Intersection kernel tier (``None``/``"auto"`` = best available).
    kernel_tier: Optional[str] = None
    #: CSR storage: ``None``/``"resident"``, ``"mmap"``, or a
    #: :class:`repro.graph.ooc.StorageConfig`.
    storage: Optional[Any] = None

    def per_triangle_compute(self) -> int:
        """Compute units charged per triangle (zero without a callback)."""
        return self.callback_compute_units if self.callback is not None else 0


@dataclass
class SurveyResult:
    """An engine run's outcome: the report plus how it was executed."""

    report: Any
    #: Name of the engine that actually ran (after any NumPy fallback).
    engine: str
    request: SurveyRequest = field(repr=False, default=None)
