"""Checkpoint/restart survey execution on top of the fault-injection layer.

Drop, duplicate and delayed deliveries are absorbed *inside*
:meth:`World.barrier` by the at-least-once transport — no driver is aware
of them.  Rank crashes cannot be: the dead rank's reducer shards and
in-flight work are gone, so a :class:`~repro.runtime.faults.RankCrashError`
aborts the survey and some layer above must decide what to do.  This module
is that layer.

Two wrappers share one recovery contract:

* :func:`run_survey_with_recovery` — full surveys.  A full survey is its own
  epoch: on a recoverable crash the world is reset
  (:meth:`World.recover_from_crash`), a *fresh* reducer is built, and the
  whole survey reruns deterministically from scratch.  The wrapper owns the
  single stats reset, so the crashed attempt's traffic and the rerun
  accumulate in the same phase — the final report carries the honest extra
  bytes of recovery.
* :class:`CheckpointedStreamingSurvey` — the streaming driver with real
  epochs.  Every ``checkpoint_interval`` batches it persists the reducer
  panels, the cumulative merge and per-rank wire totals; the applied deltas
  since the last checkpoint are retained (graph snapshots included) as the
  replay log.  On a crash the panels roll back to the checkpoint and the
  retained batches are re-surveyed — bounded replay, the classic
  checkpoint-interval trade between replay time and retained memory.

Both degrade gracefully when a crash is unrecoverable (the plan says so, or
the restart budget is spent): instead of raising, they route to
:func:`~repro.core.approximate.survivor_triangle_estimate`, returning a
scaled triangle estimate with an error bound computed from the partitions
that survived.

Recovery correctness rests on two invariants the test suite pins:

* reducer panels are order-independent sums, and the transport executes
  every logical message exactly once, so a recovered run's panels are
  bit-identical to the fault-free run's;
* ``snapshot()/merge()`` round-trips losslessly over arbitrary shardings
  (``tests/properties/test_property_reducers.py``), so restoring panels
  from a checkpoint and merging replayed ones equals the uninterrupted
  stream.

The fault domain is scoped to survey execution: graph ingest and DODGr
builds run under :meth:`World.faults_suspended`, so a crash can never leave
a half-built graph behind — matching a deployment where ingest is durable
upstream (a log) and only survey workers are expendable.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from ...graph.delta import AppliedDelta, DeltaBuffer
from ...graph.distributed_graph import DistributedGraph
from ...graph.dodgr import DODGraph
from ...runtime.faults import FaultPlan, RankCrashError, fault_plan_digest
from .request import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    SurveyRequest,
)

__all__ = [
    "CheckpointPolicy",
    "RecoveryLog",
    "ResilientSurveyResult",
    "StaleCheckpointError",
    "StreamingCheckpoint",
    "ResilientStreamingStep",
    "CheckpointedStreamingSurvey",
    "run_survey_with_recovery",
]


class StaleCheckpointError(RuntimeError):
    """A resume tried to replay against a different fault schedule.

    Replay correctness relies on determinism: the retained batches must
    re-survey under the *same* seeded :class:`~repro.runtime.faults.FaultPlan`
    the checkpoint was taken under, or the recovered panels could silently
    diverge from the fault-free stream.  Each checkpoint therefore stamps
    :func:`~repro.runtime.faults.fault_plan_digest` of the armed plan, and
    :meth:`CheckpointedStreamingSurvey._restore_checkpoint` re-validates it
    before rolling back.
    """

    def __init__(
        self, checkpoint_digest: Optional[str], armed_digest: Optional[str]
    ) -> None:
        self.checkpoint_digest = checkpoint_digest
        self.armed_digest = armed_digest
        super().__init__(
            "stale checkpoint: taken under fault plan digest "
            f"{checkpoint_digest!r} but the armed plan digests to "
            f"{armed_digest!r}; re-arm the original plan (or discard the "
            "checkpoint) before resuming"
        )


@dataclass(frozen=True)
class CheckpointPolicy:
    """How much failure to tolerate, and at what cost."""

    #: Streaming: batches between checkpoints.  Smaller = less replay on
    #: crash, more retained memory (the replay log keeps each batch's graph
    #: snapshot until the next checkpoint).
    checkpoint_interval: int = 1
    #: Recoverable crashes tolerated per survey (full) or per ingest
    #: (streaming) before degrading.
    max_restarts: int = 3
    #: When a crash is unrecoverable (or the budget is spent), return a
    #: survivor estimate instead of raising — requires the caller to supply
    #: the source graph.
    degrade_on_permanent_loss: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


@dataclass
class RecoveryLog:
    """What recovery actually did, for artifacts and assertions."""

    restarts: int = 0
    replayed_batches: int = 0
    crashes: List[Dict[str, Any]] = field(default_factory=list)
    fault_stats: Dict[str, int] = field(default_factory=dict)

    def record_crash(self, crash: RankCrashError) -> None:
        self.crashes.append(
            {
                "rank": crash.rank,
                "phase": crash.phase,
                "executions": crash.executions,
            }
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "restarts": self.restarts,
            "replayed_batches": self.replayed_batches,
            "crashes": list(self.crashes),
            "fault_stats": dict(self.fault_stats),
        }


@dataclass
class ResilientSurveyResult:
    """A survey result that survived (or gracefully degraded under) faults."""

    #: telemetry of all work this survey did, wasted attempts included
    report: Any
    #: the reducer panel; None when degraded
    panel: Any
    engine: str
    recovery: RecoveryLog
    degraded: bool = False
    #: survivor estimate with error bounds, set only when degraded
    estimate: Any = None


def run_survey_with_recovery(
    dodgr: DODGraph,
    reducer_factory: Callable[[Any], Any],
    engine: Any = None,
    algorithm: str = "push",
    kernel: str = "merge_path",
    plan: Optional[FaultPlan] = None,
    policy: Optional[CheckpointPolicy] = None,
    graph: Optional[DistributedGraph] = None,
    graph_name: Optional[str] = None,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
) -> ResilientSurveyResult:
    """Run a full survey under ``plan``, restarting through rank crashes.

    Every attempt uses a fresh reducer from ``reducer_factory`` (the crashed
    attempt's partial panel is discarded wholesale, like the dead rank's
    memory); the world's stats are reset once up front and never again, so
    the final report accumulates the wasted attempts' traffic — recovery
    cost is visible in every wire counter.  With ``plan=None`` (or a plan
    whose crash never fires) this is an ordinary survey plus one dict of
    bookkeeping.

    ``graph`` enables the degradation path: on permanent loss the source
    graph is re-surveyed from its surviving partitions
    (:func:`~repro.core.approximate.survivor_triangle_estimate`).
    """
    from . import execute_survey  # runtime import: this module is part of the package

    world = dodgr.world
    policy = policy or CheckpointPolicy()
    log = RecoveryLog()
    installed = plan is not None
    if installed:
        world.install_fault_plan(plan)
    try:
        world.reset_stats()
        while True:
            reducer = reducer_factory(world)
            request = SurveyRequest(
                dodgr=dodgr,
                callback=reducer.callback,
                algorithm=algorithm,
                kernel=kernel,
                reset_stats=False,
                graph_name=graph_name,
                callback_compute_units=callback_compute_units,
            )
            try:
                result = execute_survey(request, engine=engine)
                if hasattr(reducer, "finalize"):
                    reducer.finalize()
                panel = reducer.snapshot()
                _snapshot_fault_stats(world, log)
                return ResilientSurveyResult(
                    report=result.report,
                    panel=panel,
                    engine=result.engine,
                    recovery=log,
                )
            except RankCrashError as crash:
                log.record_crash(crash)
                world.recover_from_crash()
                log.restarts += 1
                injector = world.fault_injector
                recoverable = (
                    injector is not None and injector.plan.crash_recoverable
                )
                if recoverable and log.restarts <= policy.max_restarts:
                    continue
                _snapshot_fault_stats(world, log)
                if policy.degrade_on_permanent_loss and graph is not None:
                    estimate = _degraded_estimate(graph, crash, algorithm)
                    return ResilientSurveyResult(
                        report=estimate.report,
                        panel=None,
                        engine=str(engine or "legacy"),
                        recovery=log,
                        degraded=True,
                        estimate=estimate,
                    )
                raise
    finally:
        if installed:
            world.clear_fault_plan()


def _snapshot_fault_stats(world: Any, log: RecoveryLog) -> None:
    injector = world.fault_injector
    if injector is not None:
        log.fault_stats = injector.stats.as_dict()


def _degraded_estimate(
    graph: DistributedGraph, crash: RankCrashError, algorithm: str = "push"
) -> Any:
    from ..approximate import survivor_triangle_estimate  # avoid import cycle

    # The survivor survey runs on a fresh world of the surviving size, so
    # the estimate itself cannot be re-faulted by the installed plan.
    return survivor_triangle_estimate(
        graph, lost_ranks=[crash.rank], algorithm=algorithm
    )


# ---------------------------------------------------------------------------
# Streaming: real epochs, bounded replay
# ---------------------------------------------------------------------------


@dataclass
class StreamingCheckpoint:
    """Persisted epoch state: panels + merges + per-rank wire totals."""

    #: last batch index covered by this checkpoint
    epoch: int
    #: sliding-window panels at the epoch (copies, oldest first)
    panels: List[Any]
    #: cumulative merge at the epoch
    cumulative: Any
    #: per-rank wire totals accumulated since the stream started —
    #: ``{rank: {"wire_bytes": ..., "wire_messages": ..., "bytes_sent_remote": ...}}``
    wire_totals: Dict[int, Dict[str, int]]
    #: digest of the fault plan armed when the checkpoint was taken
    #: (``None`` = fault-free); validated on restore (stale-checkpoint guard)
    plan_digest: Optional[str] = None


class ResilientStreamingStep:
    """One :meth:`CheckpointedStreamingSurvey.ingest` result.

    Mirrors :class:`~repro.core.incremental.StreamingStep` (``snapshot`` /
    ``window`` / ``cumulative`` / ``report``) and adds the recovery story:
    how many restarts this step survived, how many checkpointed batches it
    replayed, and — when the step degraded — the survivor estimate.  The
    report's counters cover *all* work the step did (crashed attempts and
    replays included), which is exactly the honest recovery overhead.
    """

    __slots__ = (
        "batch_index",
        "new_edges",
        "report",
        "snapshot",
        "window",
        "cumulative",
        "retired",
        "host_seconds",
        "restarts",
        "replayed_batches",
        "degraded",
        "estimate",
    )

    def __init__(
        self,
        batch_index: int,
        new_edges: int,
        report: Any,
        snapshot: Any,
        window: Any,
        cumulative: Any,
        retired: Any = None,
        host_seconds: float = 0.0,
        restarts: int = 0,
        replayed_batches: int = 0,
        degraded: bool = False,
        estimate: Any = None,
    ) -> None:
        self.batch_index = batch_index
        self.new_edges = new_edges
        self.report = report
        self.snapshot = snapshot
        self.window = window
        self.cumulative = cumulative
        self.retired = retired
        self.host_seconds = host_seconds
        self.restarts = restarts
        self.replayed_batches = replayed_batches
        self.degraded = degraded
        self.estimate = estimate


class CheckpointedStreamingSurvey:
    """A :class:`~repro.core.incremental.StreamingSurvey` that survives crashes.

    Owns the same live graph + :class:`~repro.graph.delta.DeltaBuffer` +
    panel window, but runs every batch survey under the installed fault
    plan with checkpoint/restart semantics:

    * every ``policy.checkpoint_interval`` successful batches, the panel
      window, cumulative merge and per-rank wire totals are persisted and
      the replay log is truncated (releasing the retained graph snapshots);
    * on a recoverable crash, panels roll back to the last checkpoint and
      the retained batches replay with fresh reducers — deterministic, so
      the recovered panels are bit-identical to the fault-free stream;
    * on permanent loss the step degrades to a survivor estimate over the
      merged graph instead of raising.

    Ingest and DODGr rebuilds run with faults suspended (the fault domain
    is survey execution — see the module docstring).
    """

    def __init__(
        self,
        world: Any,
        reducer_factory: Callable[[Any], Any],
        plan: Optional[FaultPlan] = None,
        policy: Optional[CheckpointPolicy] = None,
        window_batches: Optional[int] = None,
        engine: Any = None,
        kernel: str = "merge_path",
        callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
        partitioner: Any = None,
        graph_name: Optional[str] = None,
    ) -> None:
        if window_batches is not None and window_batches < 1:
            raise ValueError("window_batches must be at least 1")
        self.world = world
        self.reducer_factory = reducer_factory
        self.policy = policy or CheckpointPolicy()
        self.window_batches = window_batches
        self.engine = engine
        self.kernel = kernel
        self.callback_compute_units = callback_compute_units
        self.graph = DistributedGraph(
            world, partitioner=partitioner, name=graph_name or "ckpt-streaming"
        )
        self.delta_buffer = DeltaBuffer(world)
        self.dodgr: Optional[DODGraph] = None
        self.plan = plan
        if plan is not None:
            world.install_fault_plan(plan)
        self._panels: Deque[Any] = deque()
        self._merge: Optional[Callable[[Any], Any]] = None
        self._cumulative: Any = None
        self._checkpoint: Optional[StreamingCheckpoint] = None
        #: replay log: applied batches since the last checkpoint
        self._pending: List[AppliedDelta] = []
        self._wire_totals: Dict[int, Dict[str, int]] = {
            rank: {"wire_bytes": 0, "wire_messages": 0, "bytes_sent_remote": 0}
            for rank in range(world.nranks)
        }

    # ------------------------------------------------------------------
    @property
    def last_checkpoint(self) -> Optional[StreamingCheckpoint]:
        return self._checkpoint

    @property
    def pending_replay_batches(self) -> int:
        """Batches that would replay if a rank crashed right now."""
        return len(self._pending)

    def window_panels(self) -> List[Any]:
        return list(self._panels)

    # ------------------------------------------------------------------
    def ingest(
        self,
        edges: Any,
        vertex_meta: Optional[Dict[Any, Any]] = None,
    ) -> ResilientStreamingStep:
        """Merge one batch, survey it under faults, checkpoint on schedule."""
        host_start = time.perf_counter()
        world = self.world
        world.reset_stats()
        with world.faults_suspended():
            self.delta_buffer.stage_edges(edges)
            if vertex_meta:
                for vertex, meta in vertex_meta.items():
                    self.delta_buffer.stage_vertex_meta(vertex, meta)
            applied = self.delta_buffer.apply(self.graph)
        superseded = self.dodgr
        self.dodgr = applied.dodgr
        if superseded is not None and all(
            delta.dodgr is not superseded for delta in self._pending
        ):
            # Not in the replay log (a checkpoint retired it): safe to free.
            superseded.release()
        self._pending.append(applied)

        restarts = 0
        replayed = 0
        need_replay = False
        while True:
            try:
                if need_replay:
                    self._restore_checkpoint()
                    for delta in self._pending[:-1]:
                        panel, _ = self._survey_batch(delta)
                        self._absorb(panel)
                        replayed += 1
                    need_replay = False
                panel, report = self._survey_batch(applied)
                retired = self._absorb(panel)
                break
            except RankCrashError as crash:
                world.recover_from_crash()
                restarts += 1
                injector = world.fault_injector
                recoverable = (
                    injector is not None and injector.plan.crash_recoverable
                )
                if recoverable and restarts <= self.policy.max_restarts:
                    need_replay = True
                    continue
                if self.policy.degrade_on_permanent_loss:
                    return self._degraded_step(
                        applied, crash, restarts, replayed, host_start
                    )
                raise

        self._accumulate_wire_totals()
        if len(self._pending) >= self.policy.checkpoint_interval:
            self._take_checkpoint(applied.batch_index)
        window = (
            self._cumulative
            if self.window_batches is None
            else self._merge(list(self._panels))
        )
        return ResilientStreamingStep(
            batch_index=applied.batch_index,
            new_edges=applied.num_edges(),
            report=report,
            snapshot=panel,
            window=window,
            cumulative=self._cumulative,
            retired=retired,
            host_seconds=time.perf_counter() - host_start,
            restarts=restarts,
            replayed_batches=replayed,
        )

    # ------------------------------------------------------------------
    def _survey_batch(self, applied: AppliedDelta) -> Any:
        from ..incremental import incremental_triangle_survey  # import cycle guard

        reducer = self.reducer_factory(self.world)
        if self._merge is None:
            self._merge = type(reducer).merge
        report = incremental_triangle_survey(
            applied.dodgr,
            applied,
            reducer.callback,
            kernel=self.kernel,
            engine=self.engine,
            reset_stats=False,
            callback_compute_units=self.callback_compute_units,
            graph_name=f"{self.graph.name}@{applied.batch_index}",
        )
        if hasattr(reducer, "finalize"):
            reducer.finalize()
        return reducer.snapshot(), report

    def _absorb(self, panel: Any) -> Any:
        self._panels.append(panel)
        retired = None
        if self.window_batches is not None and len(self._panels) > self.window_batches:
            retired = self._panels.popleft()
        self._cumulative = (
            panel
            if self._cumulative is None
            else self._merge([self._cumulative, panel])
        )
        return retired

    def _armed_plan_digest(self) -> Optional[str]:
        injector = self.world.fault_injector
        return fault_plan_digest(injector.plan if injector is not None else None)

    def _restore_checkpoint(self) -> None:
        """Roll panel state back to the last epoch (or the empty stream)."""
        if self._checkpoint is None:
            self._panels = deque()
            self._cumulative = None
            return
        armed = self._armed_plan_digest()
        if armed != self._checkpoint.plan_digest:
            # Replaying retained batches under a different fault schedule
            # would silently break recovery parity; fail loudly instead.
            raise StaleCheckpointError(self._checkpoint.plan_digest, armed)
        self._panels = deque(self._checkpoint.panels)
        self._cumulative = self._checkpoint.cumulative

    def _take_checkpoint(self, epoch: int) -> None:
        self._checkpoint = StreamingCheckpoint(
            epoch=epoch,
            panels=list(self._panels),
            cumulative=self._cumulative,
            wire_totals={rank: dict(t) for rank, t in self._wire_totals.items()},
            plan_digest=self._armed_plan_digest(),
        )
        # Truncate the replay log; retained graph snapshots (each batch's
        # DODGr) are only needed for replay, so all but the live one free.
        for delta in self._pending[:-1]:
            delta.dodgr.release()
        self._pending = []

    def _accumulate_wire_totals(self) -> None:
        for rank, rank_stats in enumerate(self.world.stats.ranks):
            totals = self._wire_totals[rank]
            for phase in rank_stats.phases.values():
                totals["wire_bytes"] += phase.wire_bytes
                totals["wire_messages"] += phase.wire_messages
                totals["bytes_sent_remote"] += phase.bytes_sent_remote

    def _degraded_step(
        self,
        applied: AppliedDelta,
        crash: RankCrashError,
        restarts: int,
        replayed: int,
        host_start: float,
    ) -> ResilientStreamingStep:
        estimate = _degraded_estimate(self.graph, crash)
        return ResilientStreamingStep(
            batch_index=applied.batch_index,
            new_edges=applied.num_edges(),
            report=estimate.report,
            snapshot=None,
            window=None,
            cumulative=None,
            retired=None,
            host_seconds=time.perf_counter() - host_start,
            restarts=restarts,
            replayed_batches=replayed,
            degraded=True,
            estimate=estimate,
        )
