"""Unified survey-execution layer: engine registry + shared driver core.

The paper's survey abstraction is *one* algorithm with interchangeable
communication strategies (push vs. pull, Table 4).  This package owns
survey execution end to end:

* :mod:`~repro.core.engine.registry` — the :class:`EngineSpec` table:
  engines are declared as data (:func:`register_engine`) composing the
  shared strategy implementations, and resolved with
  :func:`resolve_engine`;
* :mod:`~repro.core.engine.request` — the :class:`SurveyRequest` /
  :class:`SurveyResult` pair and the caller-facing :class:`EngineConfig`
  selector threaded through ``analysis/*``, ``bench/*`` and the CLIs;
* :mod:`~repro.core.engine.driver` / :mod:`~repro.core.engine.pull` /
  :mod:`~repro.core.engine.delta` — the shared driver core: candidate
  stream construction over ``CSRAdjacency``/``RowAdjacency``, intersect
  handler setup, :class:`~repro.graph.metadata.TriangleBatch` delivery via
  :func:`resolve_batch_callback`, and bulk wire accounting that keeps every
  engine byte-identical on Table 4;
* :mod:`~repro.core.engine.segments` — the shared ragged-array utilities;
* :mod:`~repro.core.engine.push` / :mod:`~repro.core.engine.push_pull` —
  the Push-Only and Push-Pull runners, one driver loop each.

``repro.core.survey``, ``repro.core.push_pull`` and
``repro.core.incremental`` are thin entry points over this layer.

Adding an engine
----------------

Register a new composition — no new driver loop::

    from repro.core.engine import EngineSpec, register_engine

    register_engine(EngineSpec(
        name="my-engine",
        description="batched pushes, columnar pull",
        push_style="batched", pull_style="columnar",
        proposal_style="batched", requires_numpy=True, fallback="batched",
    ))

The ``columnar-pull`` engine shipped here is exactly such a registration;
``tools/check_engines.py`` smoke-checks that every registered engine stays
on the equivalence contract (identical reducer panels, byte-identical wire
totals), and the cross-engine property suite
(``tests/properties/test_property_engines.py``) pins it on random graphs.
"""

from __future__ import annotations

from .registry import (
    BACKENDS,
    EngineSpec,
    backend_names,
    engine_names,
    incremental_engine_names,
    register_engine,
    registered_engines,
    resolve_backend,
    resolve_engine,
    resolve_incremental_engine,
    validate_request,
)
from .request import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    DELTA_PUSH_PHASE,
    DRY_RUN_PHASE,
    PULL_PHASE,
    PUSH_PHASE,
    EngineConfig,
    EngineSelector,
    SurveyRequest,
    SurveyResult,
    TriangleCallback,
    default_engine,
    split_backend_selector,
    split_engine_selector,
    split_execution_selector,
)
from .driver import resolve_batch_callback
from .program import SurveyProgram, execute_program
from .push import build_push_program, run_push_survey
from .push_pull import build_push_pull_program, run_push_pull_survey

__all__ = [
    "EngineSpec",
    "EngineConfig",
    "EngineSelector",
    "SurveyRequest",
    "SurveyResult",
    "SurveyProgram",
    "TriangleCallback",
    "BACKENDS",
    "register_engine",
    "resolve_engine",
    "resolve_incremental_engine",
    "resolve_backend",
    "registered_engines",
    "engine_names",
    "incremental_engine_names",
    "backend_names",
    "split_engine_selector",
    "split_backend_selector",
    "split_execution_selector",
    "validate_request",
    "default_engine",
    "resolve_batch_callback",
    "execute_program",
    "build_push_program",
    "run_push_survey",
    "build_push_pull_program",
    "run_push_pull_survey",
    "execute_survey",
    "DEFAULT_CALLBACK_COMPUTE_UNITS",
    "PUSH_PHASE",
    "DRY_RUN_PHASE",
    "PULL_PHASE",
    "DELTA_PUSH_PHASE",
]


def execute_survey(request: SurveyRequest, engine=None) -> SurveyResult:
    """Run ``request`` on the engine it (or ``engine``) selects.

    The request's ``algorithm`` picks the runner (``"push"`` or
    ``"push_pull"``); ``engine`` may be anything
    :func:`resolve_engine` accepts and defaults to the legacy engine.
    """
    spec = resolve_engine(engine)
    if request.algorithm == "push":
        return run_push_survey(request, spec)
    if request.algorithm == "push_pull":
        return run_push_pull_survey(request, spec)
    raise ValueError(f"unknown survey algorithm {request.algorithm!r}")


# Checkpoint/restart wrappers import execute_survey lazily, so this import
# must stay below its definition.
from .checkpoint import (  # noqa: E402
    CheckpointPolicy,
    CheckpointedStreamingSurvey,
    RecoveryLog,
    ResilientStreamingStep,
    ResilientSurveyResult,
    StaleCheckpointError,
    StreamingCheckpoint,
    run_survey_with_recovery,
)

__all__ += [
    "CheckpointPolicy",
    "CheckpointedStreamingSurvey",
    "RecoveryLog",
    "ResilientStreamingStep",
    "ResilientSurveyResult",
    "StaleCheckpointError",
    "StreamingCheckpoint",
    "run_survey_with_recovery",
]
