"""Pull-phase machinery: how engines deliver and intersect pulled adjacency.

The Push-Pull pull phase ships ``Adj^m_+(q)`` from its owner to the ranks
on ``q``'s pull list (coalesced: at most once per requesting rank); the
requester intersects it locally against every pivot of its own that wanted
``q``.  The engine registry composes one of three strategies:

* ``legacy`` — one sized RPC per (q, requester), one scalar merge per
  waiting pivot;
* ``batched`` — same per-(q, requester) deliveries, but each one
  intersects all of its waiting pivots in a single batch-kernel call;
* ``columnar`` — one RPC per (owner rank, requesting rank) pair carrying
  every pulled adjacency row at once, row-kernel intersection, triangles
  delivered to the reducer as one
  :class:`~repro.graph.metadata.TriangleBatch`; every replaced
  per-(q, requester) delivery is accounted — in legacy send order — at its
  exact serialized size, so the Table 3/Table 4 columns stay
  byte-identical.

Handler factories close over the run's driver-side ``pivots_by_target``
state (owned by the Push-Pull runner); drivers consume the owner-side
``pull_lists``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...graph.dodgr import DODGraph, entry_key
from ...graph.metadata import TriangleBatch, TriangleMetadata
from ...runtime.serialization import uvarint_size
from ..intersection import (
    INTERSECTION_KERNELS,
    batch_kernel as select_batch_kernel,
    row_kernel as select_row_kernel,
)
from .driver import (
    candidate_key,
    deliver_batch,
    legacy_push_payload_overhead,
    resolve_batch_callback,
    row_adjacency,
)
from .request import TriangleCallback
from .segments import concat_segments

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = ["make_pull_handler", "drive_pull", "PULL_STYLES"]

#: The pull-side strategies the engine registry can compose.
PULL_STYLES = ("legacy", "batched", "columnar")


def _make_legacy_pull_handler(
    dodgr: DODGraph,
    intersect,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
    pivots_by_target,
):
    """Pull-phase: Adj^m_+(q) arrives at a source rank; intersect locally."""

    def _pull_deliver_handler(
        ctx, q: Any, meta_q: Any, adjacency_q: List[tuple]
    ) -> None:
        ctx.add_counter("vertices_pulled", 1)
        store = dodgr.local_store(ctx)
        wanting_pivots = pivots_by_target[ctx.rank].get(q, ())
        for p, q_index in wanting_pivots:
            record = store.get(p)
            if record is None:
                continue
            adjacency_p = record["adj"]
            meta_p = record["meta"]
            meta_pq = adjacency_p[q_index][2]
            suffix = adjacency_p[q_index + 1 :]
            ctx.add_counter("wedge_checks", len(suffix))
            result = intersect(suffix, adjacency_q, entry_key, candidate_key)
            ctx.add_compute(result.comparisons)
            for suff_idx, pulled_idx in result.matches:
                r, _d_r, meta_pr, meta_r = suffix[suff_idx]
                meta_qr = adjacency_q[pulled_idx][2]
                ctx.add_counter("triangles_found", 1)
                if callback is not None:
                    ctx.add_compute(per_triangle_compute)
                    callback(
                        ctx,
                        TriangleMetadata(
                            p=p, q=q, r=r,
                            meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                            meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                        ),
                    )

    return _pull_deliver_handler


def _make_batched_pull_handler(
    dodgr: DODGraph,
    batch_kernel,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
    pivots_by_target,
):
    """Pull-phase delivery, batched: intersect all waiting pivots at once.

    ``Adj^m_+(q)`` arrives once per requesting rank exactly as in the
    legacy path; instead of one merge per waiting pivot, every pivot's
    suffix becomes one segment of a single batch-kernel call against the
    pulled list (mapped to dense ``<+`` order ids).
    """

    def _pull_deliver_batched_handler(
        ctx, q: Any, meta_q: Any, adjacency_q: List[tuple]
    ) -> None:
        ctx.add_counter("vertices_pulled", 1)
        csr = dodgr.csr(ctx)
        order_ids = dodgr.order_ids()
        pulled_ids = [order_ids[entry[0]] for entry in adjacency_q]
        rows: List[int] = []
        starts: List[int] = []
        ends: List[int] = []
        for p, q_index in pivots_by_target[ctx.rank].get(q, ()):
            row = csr.row_of(p)
            if row is None:
                continue
            lo, hi = csr.row_slice(row)
            start = lo + q_index + 1
            ctx.add_counter("wedge_checks", hi - start)
            rows.append(row)
            starts.append(start)
            ends.append(hi)
        if not rows:
            return
        candidate_ids, offsets = concat_segments(csr.tgt_ids, starts, ends)
        result = batch_kernel(candidate_ids, offsets, pulled_ids)
        ctx.add_compute(result.comparisons)
        if not result.matches:
            return
        ctx.add_counter("triangles_found", len(result.matches))
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * len(result.matches))
        for wedge, cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr, meta_r = csr.entries[starts[wedge] + cand_idx]
            meta_qr = adjacency_q[adj_idx][2]
            row = rows[wedge]
            callback(
                ctx,
                TriangleMetadata(
                    p=csr.row_vertices[row], q=q, r=r,
                    meta_p=csr.row_meta[row], meta_q=meta_q, meta_r=meta_r,
                    meta_pq=csr.entries[starts[wedge] - 1][2],
                    meta_pr=meta_pr, meta_qr=meta_qr,
                ),
            )

    return _pull_deliver_batched_handler


def _make_columnar_pull_handler(
    dodgr: DODGraph,
    row_kernel,
    callback: Optional["TriangleCallback"],
    batch_callback,
    per_triangle_compute: int,
    pivots_by_target,
):
    """Pull-phase delivery, columnar: one RPC per (owner, requester) pair.

    ``q_rows`` indexes every adjacency row this owner rank is delivering
    to this requester, in the owner's legacy send order.  Each waiting
    pivot's suffix becomes one segment of a single row-kernel call
    against the owner's CSR rows, and the closing triangles are handed
    to the reducer as one :class:`TriangleBatch`.
    """

    def _pull_deliver_columnar_handler(ctx, owner_csr, q_rows) -> None:
        ctx.add_counter("vertices_pulled", len(q_rows))
        csr = dodgr.csr(ctx)
        targets = pivots_by_target[ctx.rank]
        row_of = csr.row_of
        rows: List[int] = []
        starts: List[int] = []
        ends: List[int] = []
        seg_q_rows: List[int] = []
        wedge_checks = 0
        for q_row in q_rows.tolist():
            q = owner_csr.row_vertices[q_row]
            for p, q_index in targets.get(q, ()):
                row = row_of(p)
                if row is None:
                    continue
                lo, hi = csr.row_slice(row)
                start = lo + q_index + 1
                wedge_checks += hi - start
                rows.append(row)
                starts.append(start)
                ends.append(hi)
                seg_q_rows.append(q_row)
        ctx.add_counter("wedge_checks", wedge_checks)
        if not rows:
            return
        candidate_ids, offsets = concat_segments(csr.tgt_ids, starts, ends)
        adjacency = row_adjacency(owner_csr, dodgr.order_count())
        result = row_kernel(
            candidate_ids, offsets, _np.asarray(seg_q_rows, dtype=_np.int64), adjacency
        )
        ctx.add_compute(int(result.comparisons))
        matches = len(result)
        if not matches:
            return
        ctx.add_counter("triangles_found", matches)
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * matches)
        starts_arr = _np.asarray(starts, dtype=_np.int64)
        seg = result.seg if hasattr(result.seg, "tolist") else _np.asarray(result.seg)
        cand_pos = (
            result.cand_pos
            if hasattr(result.cand_pos, "tolist")
            else _np.asarray(result.cand_pos)
        )
        src_pos = (starts_arr[seg] + cand_pos - offsets[seg]).tolist()
        seg_list = seg.tolist()
        adj_pos = (
            result.adj_pos.tolist()
            if hasattr(result.adj_pos, "tolist")
            else list(result.adj_pos)
        )
        entries = csr.entries
        owner_entries = owner_csr.entries
        builders = {
            "p": lambda: [csr.row_vertices[rows[s]] for s in seg_list],
            "meta_p": lambda: [csr.row_meta[rows[s]] for s in seg_list],
            "q": lambda: [owner_csr.row_vertices[seg_q_rows[s]] for s in seg_list],
            "meta_q": lambda: [owner_csr.row_meta[seg_q_rows[s]] for s in seg_list],
            "meta_pq": lambda: [entries[starts[s] - 1][2] for s in seg_list],
            "r": lambda: [entries[pos][0] for pos in src_pos],
            "meta_pr": lambda: [entries[pos][2] for pos in src_pos],
            "meta_r": lambda: [entries[pos][3] for pos in src_pos],
            "meta_qr": lambda: [owner_entries[pos][2] for pos in adj_pos],
        }
        batch = TriangleBatch(len(src_pos), builders)
        deliver_batch(ctx, batch, callback, batch_callback)

    return _pull_deliver_columnar_handler


def make_pull_handler(
    style: str,
    dodgr: DODGraph,
    kernel: str,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
    pivots_by_target,
    kernel_tier: Optional[str] = None,
):
    """Build the requester-side pull handler for an engine's ``pull_style``.

    ``kernel_tier`` selects the batch/row kernel implementation tier, as in
    :func:`~repro.core.engine.driver.make_push_intersect_handler`.
    """
    if style == "batched":
        return _make_batched_pull_handler(
            dodgr, select_batch_kernel(kernel, kernel_tier), callback,
            per_triangle_compute, pivots_by_target,
        )
    if style == "columnar":
        return _make_columnar_pull_handler(
            dodgr,
            select_row_kernel(kernel, kernel_tier),
            callback,
            resolve_batch_callback(callback),
            per_triangle_compute,
            pivots_by_target,
        )
    if style != "legacy":
        raise ValueError(f"unknown pull style {style!r}; known: {PULL_STYLES}")
    return _make_legacy_pull_handler(
        dodgr, INTERSECTION_KERNELS[kernel], callback, per_triangle_compute,
        pivots_by_target,
    )


def drive_pull(style: str, ctx, dodgr: DODGraph, handler, pull_list) -> None:
    """Run one owner rank's pull deliveries at the engine's granularity.

    ``pull_list`` maps each locally owned ``q`` to the source ranks that
    should receive ``Adj^m_+(q)``.  The legacy and batched styles send one
    sized RPC per (q, requester); the columnar style coalesces one RPC per
    requesting rank, accounting each replaced delivery — in legacy send
    order — at the exact serialized size of the legacy message (same wire
    framing as the push accounting: outer pair + argument list + payload
    list).
    """
    if style == "columnar":
        rank = ctx.rank
        csr = dodgr.csr(rank)
        pull_overhead = legacy_push_payload_overhead(handler.handler_id)
        groups: Dict[int, Tuple[List[int], List[int]]] = {}
        for q, requesters in pull_list.items():
            row = csr.row_of(q)
            if row is None:
                continue
            lo, hi = csr.row_slice(row)
            # The pulled payload omits meta(r): the requesting rank
            # stores meta(r) locally for every r it may close with.
            nbytes = (
                pull_overhead
                + csr.row_wire_sizes[row]
                + uvarint_size(hi - lo)
                + csr.cand_size_cumsum[hi]
                - csr.cand_size_cumsum[lo]
            )
            for source_rank in requesters:
                ctx.account_rpc(source_rank, nbytes)
                group = groups.get(source_rank)
                if group is None:
                    groups[source_rank] = group = ([], [0])
                group[0].append(row)
                group[1][0] += nbytes
        for source_rank, (q_row_list, (group_bytes,)) in groups.items():
            ctx.async_call_batched(
                source_rank,
                handler,
                csr,
                _np.asarray(q_row_list, dtype=_np.int64),
                virtual_rpcs=len(q_row_list),
                virtual_bytes=group_bytes,
            )
        return
    if style not in ("legacy", "batched"):
        raise ValueError(f"unknown pull style {style!r}; known: {PULL_STYLES}")
    store = dodgr.local_store(ctx)
    for q, requesters in pull_list.items():
        record = store.get(q)
        if record is None:
            continue
        meta_q = record["meta"]
        # The pulled payload omits meta(r): the requesting rank stores
        # meta(r) locally for every r in its pivots' adjacency lists.
        payload = [(entry[0], entry[1], entry[2]) for entry in record["adj"]]
        for source_rank in requesters:
            ctx.async_call_sized(source_rank, handler, q, meta_q, payload)
