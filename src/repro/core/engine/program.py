"""Survey programs: a survey's phases as data, executed by a pluggable backend.

The engine runners in :mod:`~repro.core.engine.push` and
:mod:`~repro.core.engine.push_pull` used to interleave three concerns: handler
registration, the per-phase driver loops, and report assembly.  Splitting the
middle one out as data — a :class:`SurveyProgram` holding ``(phase name,
drive(ctx))`` pairs — is what lets a second *execution backend* run the same
program without per-engine forks:

* the **simulated** backend (:func:`run_simulated_phases`) replays the exact
  historical loop: ``begin_phase``; for every rank in order, a cooperative
  deadline check then the rank's drive closure; ``barrier()``.  It is the
  bit-exact oracle every other backend is measured against, the way the
  ``legacy`` engine is the oracle on the engine axis.
* the **process** backend (:mod:`repro.runtime.backend.process`) forks worker
  processes after program construction and runs the same drive closures
  concurrently, one rank-shard per worker, replaying the same wire accounting.

Handler registration stays in the ``build_*_program`` functions (it must
happen before a process backend forks, so handler ids — and therefore every
serialized message size — are identical in every worker), and report assembly
stays in :func:`execute_program`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

from ..results import SurveyReport
from .registry import EngineSpec, resolve_backend
from .request import SurveyRequest, SurveyResult

__all__ = [
    "SurveyProgram",
    "execute_program",
    "run_simulated_phases",
]


@dataclass
class SurveyProgram:
    """One survey, compiled to phases: everything a backend needs to run it.

    ``phases`` is an ordered list of ``(phase_name, drive)`` pairs where
    ``drive(ctx)`` performs one rank's share of that phase — walking local
    pivots and issuing the engine's RPCs against ``ctx``.  Drive closures may
    keep per-rank state (pull lists, push-target sets) indexed by
    ``ctx.rank``; they must not assume any cross-rank execution order beyond
    "all of phase N completes before phase N+1 starts".
    """

    algorithm: str
    request: SurveyRequest
    spec: EngineSpec
    phases: List[Tuple[str, Callable[[Any], None]]]

    @property
    def phase_names(self) -> List[str]:
        return [name for name, _ in self.phases]


def run_simulated_phases(program: SurveyProgram) -> float:
    """Execute every phase in the single-process simulated world.

    This is the historical driver loop, unchanged: it defines the oracle
    semantics (rank-order drives, termination-detecting barrier per phase)
    that the process backend must reproduce bit-exactly.  Returns host
    wall-clock seconds spent driving.
    """
    world = program.request.dodgr.world
    host_start = time.perf_counter()
    for phase_name, drive in program.phases:
        world.begin_phase(phase_name)
        for ctx in world.ranks:
            # Cooperative cancellation checkpoint: a service-installed
            # deadline aborts between per-rank batches instead of mid-RPC.
            world.check_deadline()
            drive(ctx)
        world.barrier()
    return time.perf_counter() - host_start


def execute_program(program: SurveyProgram) -> SurveyResult:
    """Run ``program`` on the backend its request selects and build the report."""
    request = program.request
    dodgr = request.dodgr
    world = dodgr.world
    backend = resolve_backend(getattr(request, "backend", None))
    if backend == "process":
        from ...runtime.backend.process import run_program_in_processes

        host_seconds = run_program_in_processes(program)
    else:
        host_seconds = run_simulated_phases(program)

    phases = program.phase_names
    simulated = world.simulated_time(phases=phases)
    report = SurveyReport.from_world_stats(
        algorithm=program.algorithm,
        graph_name=request.graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=phases,
        host_seconds=host_seconds,
    )
    return SurveyResult(report=report, engine=program.spec.name, request=request)
