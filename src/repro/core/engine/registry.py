"""Engine registry: one place where survey execution strategies are declared.

The paper's survey abstraction is one algorithm with interchangeable
communication strategies (Table 4); an *engine* here is one such strategy,
declared as an :class:`EngineSpec` — a pure-data composition of the shared
driver core in :mod:`repro.core.engine.driver` and
:mod:`repro.core.engine.pull`:

* ``push_style`` — how candidate pushes are generated, coalesced and
  intersected (``legacy`` one RPC per wedge, ``batched`` one RPC per
  (destination rank, target vertex) over the batch kernels, ``columnar``
  one RPC per (source rank, destination rank) over the row kernels);
* ``pull_style`` — how the Push-Pull pull phase delivers ``Adj^m_+(q)``
  and intersects it at the requester;
* ``proposal_style`` — whether the Push-Pull dry run coalesces its
  proposals;
* ``incremental_style`` — which delta-survey implementation
  (:mod:`repro.core.engine.delta`) the engine maps to, or ``None`` when
  the engine has no incremental form.

Adding an engine is therefore a :func:`register_engine` call with a new
composition — no new driver loop.  ``columnar-pull`` below is exactly
that: the batched push/dry-run phases combined with the columnar
row-kernel pull phase, registered as data.

Every registered engine shares the equivalence contract pinned by the
golden parity suites: identical triangles, identical reducer panels,
byte-identical Table 4 communication totals.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from .request import EngineConfig

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = [
    "EngineSpec",
    "BACKENDS",
    "register_engine",
    "resolve_engine",
    "resolve_incremental_engine",
    "resolve_backend",
    "registered_engines",
    "engine_names",
    "incremental_engine_names",
    "backend_names",
    "validate_request",
]


@dataclass(frozen=True)
class EngineSpec:
    """Declarative description of one survey execution engine."""

    name: str
    description: str
    #: Candidate-push strategy: ``"legacy"``, ``"batched"`` or ``"columnar"``.
    push_style: str = "legacy"
    #: Pull-phase strategy: ``"legacy"``, ``"batched"`` or ``"columnar"``.
    pull_style: str = "legacy"
    #: Dry-run proposal strategy: ``"legacy"`` or ``"batched"``.
    proposal_style: str = "legacy"
    #: Delta-survey implementation (``"legacy"``/``"columnar"``) or ``None``
    #: when the engine has no incremental form.
    incremental_style: Optional[str] = None
    #: The engine's drivers need NumPy arrays.
    requires_numpy: bool = False
    #: Engine to downgrade to when ``requires_numpy`` cannot be satisfied.
    fallback: Optional[str] = None
    #: Kernel tiers this engine's drivers can run
    #: (:data:`repro.core.intersection.KERNEL_TIERS` order).  Engines whose
    #: intersections go through the batch/row kernel tables support every
    #: tier; the legacy scalar driver only the scalar one.  Requesting a
    #: declared-but-unavailable tier (no numba wheel) downgrades along
    #: ``compiled -> columnar -> scalar``; requesting an *undeclared* tier
    #: is a pre-run error (:func:`validate_request`).
    kernel_tiers: Tuple[str, ...] = ("scalar",)


#: Registration-ordered engine table.  Dicts preserve insertion order, which
#: the registry exposes as the canonical listing order (docs, CLIs, smokes).
_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Register an execution engine under ``spec.name``.

    Set ``replace=True`` to overwrite an existing registration (used by
    tests that shadow an engine); otherwise duplicate names are an error.
    """
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"engine {spec.name!r} is already registered")
    if spec.requires_numpy and spec.fallback is not None:
        if spec.fallback not in _REGISTRY and spec.fallback != spec.name:
            raise ValueError(
                f"engine {spec.name!r} declares unknown fallback {spec.fallback!r}"
            )
    _REGISTRY[spec.name] = spec
    return spec


def registered_engines() -> Tuple[EngineSpec, ...]:
    """Every registered engine, in registration order."""
    return tuple(_REGISTRY.values())


def engine_names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def incremental_engine_names() -> Tuple[str, ...]:
    """Names of the engines that have an incremental (delta-survey) form."""
    return tuple(
        spec.name for spec in _REGISTRY.values() if spec.incremental_style is not None
    )


#: The execution-backend axis, orthogonal to the engine axis: every engine
#: runs on every backend.  ``simulated`` is the single-process oracle world;
#: ``process`` shards ranks across forked worker processes over shared-memory
#: buffers while replaying the simulated wire accounting byte-for-byte
#: (:mod:`repro.runtime.backend`).
BACKENDS: Tuple[str, ...] = ("simulated", "process")


def backend_names() -> Tuple[str, ...]:
    """Registered execution-backend names, oracle first."""
    return BACKENDS


def resolve_backend(backend: Any = None) -> str:
    """Normalise a ``backend=`` selector to a known backend name.

    ``None`` selects the simulated oracle — the default everywhere, so
    existing callers are untouched by the backend axis.
    """
    if backend is None:
        return "simulated"
    if isinstance(backend, str) and backend in BACKENDS:
        return backend
    raise ValueError(
        f"unknown execution backend {backend!r}; known: {BACKENDS}"
        f"{suggest_name(backend, BACKENDS)}"
    )


def _downgrade_without_numpy(spec: EngineSpec) -> EngineSpec:
    """Follow ``fallback`` links until a NumPy-free engine is reached."""
    seen = set()
    while spec.requires_numpy and _np is None:  # pragma: no cover - no-NumPy env
        if spec.fallback is None or spec.name in seen:
            raise ValueError(
                f"engine {spec.name!r} requires NumPy and declares no fallback"
            )
        seen.add(spec.name)
        spec = _REGISTRY[spec.fallback]
    return spec


def suggest_name(name: Any, known: Iterable[str]) -> str:
    """A ``; did you mean ...?`` suffix for unknown-name errors.

    Shared by the engine registry, the sweep runner's analysis axis and the
    survey service so every unknown-name error reads the same way.  Returns
    an empty string when nothing in ``known`` is close enough — errors stay
    clean for genuinely foreign names.
    """
    matches = difflib.get_close_matches(str(name), list(known), n=1, cutoff=0.6)
    return f"; did you mean {matches[0]!r}?" if matches else ""


def _lookup(engine: Any, batched: bool = False) -> EngineSpec:
    """Resolve a selector to its registered spec, without NumPy downgrading."""
    if isinstance(engine, EngineSpec):
        spec = _REGISTRY.get(engine.name)
        if spec is not engine:
            raise ValueError(
                f"engine {engine.name!r} is not the registered spec of that "
                f"name; register it first"
            )
        return spec
    if isinstance(engine, EngineConfig):
        engine = engine.engine
    if engine is None:
        engine = "batched" if batched else "legacy"
    spec = _REGISTRY.get(engine)
    if spec is None:
        raise ValueError(
            f"unknown survey engine {engine!r}; known: {engine_names()}"
            f"{suggest_name(engine, engine_names())}"
        )
    return spec


def resolve_engine(engine: Any = None, batched: bool = False) -> EngineSpec:
    """Normalise an ``engine``/``batched`` selector pair to an engine spec.

    ``engine`` may be ``None``, a registered name, an :class:`EngineSpec`
    or an :class:`~repro.core.engine.request.EngineConfig`.  ``engine=None``
    preserves the PR 1 API: ``batched=True`` selects the batched engine,
    otherwise legacy.  Engines whose drivers need NumPy downgrade along
    their declared ``fallback`` chain when it is unavailable — results are
    identical either way (the equivalence contract).
    """
    return _downgrade_without_numpy(_lookup(engine, batched))


def resolve_incremental_engine(engine: Any = None) -> EngineSpec:
    """Resolve an engine selector for the incremental (delta) survey.

    Defaults to the columnar engine when NumPy is available, legacy
    otherwise.  Engines without an ``incremental_style`` are rejected.
    Without NumPy, engines whose incremental form is columnar downgrade
    straight to the legacy engine — the full-survey ``fallback`` chain does
    not apply here, because a fallback like ``batched`` has no incremental
    form at all.
    """
    if isinstance(engine, EngineConfig):
        engine = engine.engine
    if engine is None:
        engine = "columnar" if _np is not None else "legacy"
    spec = _lookup(engine)
    if spec.incremental_style is None:
        raise ValueError(
            f"unknown incremental engine {spec.name!r}; known: "
            f"{incremental_engine_names()}"
            f"{suggest_name(spec.name, incremental_engine_names())}"
        )
    if spec.incremental_style == "columnar" and _np is None:
        spec = _REGISTRY["legacy"]
    return spec


def validate_request(request: Any, spec: EngineSpec) -> None:
    """Reject unsupported execution-axis combinations before anything runs.

    Called by every engine runner on the resolved ``(request, spec)`` pair;
    raising here means no handlers were registered, no phases begun, no
    segment files created.  Two axes are checked:

    * ``kernel_tier`` — must name a known tier
      (:data:`repro.core.intersection.KERNEL_TIERS`) that the engine
      *declares* (``spec.kernel_tiers``).  Declared-but-unavailable tiers
      (no numba wheel) are fine: they downgrade along the
      ``compiled -> columnar -> scalar`` chain at kernel-lookup time.
    * ``storage`` — must be a known mode (or a
      :class:`~repro.graph.ooc.StorageConfig`); ``"mmap"`` is rejected on
      the process backend until segments ship by path to the workers.
    """
    from ...graph.ooc import StorageConfig, resolve_storage
    from ..intersection import KERNEL_TIERS

    tier = getattr(request, "kernel_tier", None)
    if tier is not None and tier != "auto":
        if tier not in KERNEL_TIERS:
            raise ValueError(
                f"unknown kernel tier {tier!r}; known: {KERNEL_TIERS}"
                f"{suggest_name(tier, KERNEL_TIERS)}"
            )
        if tier not in spec.kernel_tiers:
            raise ValueError(
                f"engine {spec.name!r} does not support kernel tier {tier!r}; "
                f"declared tiers: {spec.kernel_tiers}"
            )
    storage = getattr(request, "storage", None)
    mode = resolve_storage(
        storage.mode if isinstance(storage, StorageConfig) else storage
    )
    if mode == "mmap" and resolve_backend(getattr(request, "backend", None)) == "process":
        raise ValueError(
            "storage='mmap' is not supported on backend='process': memmap "
            "segment files are not yet shipped by path to worker processes; "
            "run mmap surveys on the simulated backend"
        )


# ---------------------------------------------------------------------------
# Built-in engines.  Everything below is data: the drivers they compose live
# in driver.py / pull.py / delta.py, and a new engine is a new composition.
# ---------------------------------------------------------------------------

register_engine(
    EngineSpec(
        name="legacy",
        description=(
            "Scalar reference: one sized RPC per wedge, per-message scalar "
            "intersection, per-triangle callback delivery.  The parity "
            "oracle every other engine is measured against."
        ),
        push_style="legacy",
        pull_style="legacy",
        proposal_style="legacy",
        incremental_style="legacy",
    )
)

register_engine(
    EngineSpec(
        name="batched",
        description=(
            "PR 1 coalescing: one RPC per (destination rank, target vertex) "
            "group, vectorized batch-kernel intersection over the CSR "
            "adjacency, coalesced dry-run proposals."
        ),
        push_style="batched",
        pull_style="batched",
        proposal_style="batched",
        kernel_tiers=("compiled", "columnar", "scalar"),
    )
)

register_engine(
    EngineSpec(
        name="columnar",
        description=(
            "PR 3 array engine: one RPC per (source rank, destination rank) "
            "pair, row-kernel intersection, TriangleBatch delivery to batch "
            "reducers, columnar pull phase."
        ),
        push_style="columnar",
        pull_style="columnar",
        proposal_style="batched",
        incremental_style="columnar",
        requires_numpy=True,
        fallback="batched",
        kernel_tiers=("compiled", "columnar", "scalar"),
    )
)

register_engine(
    EngineSpec(
        name="columnar-pull",
        description=(
            "Hybrid proving the registry: batched push/dry-run phases (batch "
            "kernels) composed with the columnar row-kernel pull phase "
            "(TriangleBatch delivery to batch reducers).  Defined purely as "
            "this spec — no engine-specific driver code."
        ),
        push_style="batched",
        pull_style="columnar",
        proposal_style="batched",
        incremental_style="columnar",
        requires_numpy=True,
        fallback="batched",
        kernel_tiers=("compiled", "columnar", "scalar"),
    )
)
