"""Delta-survey machinery: the incremental engines' handlers and drivers.

:func:`repro.core.incremental.incremental_triangle_survey` surveys exactly
the triangles containing at least one edge of an applied batch
(:class:`~repro.graph.delta.AppliedDelta`), via the wedge decomposition
documented in :mod:`repro.core.incremental`.  This module holds the two
engine implementations the registry's ``incremental_style`` field selects:

* ``legacy`` — the scalar reference: one sized RPC per (wedge, stream)
  carrying the filtered candidate tuples, intersected per message with the
  scalar kernels (the parity oracle);
* ``columnar`` — candidate selection as boolean array masks over the CSR
  edge positions, one coalesced RPC per (source rank, destination rank,
  stream), row-kernel intersection, lazy
  :class:`~repro.graph.metadata.TriangleBatch` delivery.  Every replaced
  legacy message is accounted — in legacy send order, through the real
  buffer bank — at its exact serialized size.

Both compose the same shared driver core as the full-survey engines
(:mod:`repro.core.engine.driver`, :mod:`repro.core.engine.segments`).
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Tuple

from ...graph.delta import AppliedDelta
from ...graph.dodgr import DODGraph, entry_key
from ...graph.metadata import TriangleMetadata
from ...runtime.serialization import uvarint_size_array
from ..intersection import RowAdjacency
from .driver import (
    candidate_key,
    columnar_push_batch,
    deliver_batch,
    row_adjacency,
)
from .request import TriangleCallback
from .segments import ragged_gather

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the legacy fallback
    _np = None

__all__ = [
    "new_source_vertices",
    "make_delta_columnar_handler",
    "make_delta_legacy_handlers",
    "drive_columnar_delta",
    "drive_legacy_delta",
]


def new_source_vertices(delta: AppliedDelta) -> set:
    """Vertices with at least one new *outgoing* directed edge in the DODGr.

    The directed form of a new undirected pair points from the ``<+``-smaller
    endpoint to the larger, so only the smaller endpoint can own a new entry.
    Old-old wedges targeting any other vertex cannot close a delta triangle.
    """
    order_ids = delta.dodgr.order_ids()
    sources = set()
    for u, v, _meta in delta.edges:
        sources.add(u if order_ids[u] < order_ids[v] else v)
    return sources


# ---------------------------------------------------------------------------
# New-entries adjacency views of the destination CSR (columnar engine)
# ---------------------------------------------------------------------------

#: AppliedDelta -> {rank: (RowAdjacency over new entries, new->orig position map)}
_NEW_ADJ_CACHE: "weakref.WeakKeyDictionary[AppliedDelta, Dict[int, Tuple[RowAdjacency, Any]]]" = (
    weakref.WeakKeyDictionary()
)


def _delta_row_adjacency(delta: AppliedDelta, rank: int) -> Tuple[RowAdjacency, Any]:
    """Rank ``rank``'s new-entries-only :class:`RowAdjacency` plus position map.

    Shares the destination CSR's row indexing (row ``i`` is the same vertex)
    but keeps only the new directed edges, so the row kernels can intersect
    old-old candidate streams against "what changed at q" in one call.  The
    second element maps filtered edge positions back to positions in the full
    CSR edge arrays (for metadata lookup).
    """
    per_delta = _NEW_ADJ_CACHE.setdefault(delta, {})
    cached = per_delta.get(rank)
    if cached is None:
        dodgr = delta.dodgr
        csr = dodgr.csr(rank)
        cols = csr.columns()
        mask = delta.edge_mask(rank)
        new_to_orig = _np.flatnonzero(mask)
        lengths = cols.indptr[1:] - cols.indptr[:-1]
        edge_rows = _np.repeat(_np.arange(csr.num_rows, dtype=_np.int64), lengths)
        new_counts = _np.bincount(edge_rows[mask], minlength=csr.num_rows)
        new_indptr = _np.concatenate(
            ([0], _np.cumsum(new_counts))
        ).astype(_np.int64)
        adjacency = RowAdjacency(
            csr.tgt_ids[new_to_orig], new_indptr, dodgr.order_count()
        )
        cached = (adjacency, new_to_orig)
        per_delta[rank] = cached
    return cached


# ---------------------------------------------------------------------------
# Columnar engine
# ---------------------------------------------------------------------------


class _DeltaStreamResult:
    """A :class:`~repro.core.intersection.RowBatchResult` view with remapped
    adjacency positions (filtered new-entry positions -> full CSR positions)."""

    __slots__ = ("seg", "cand_pos", "adj_pos", "comparisons")

    def __init__(self, result, adj_pos) -> None:
        self.seg = result.seg
        self.cand_pos = result.cand_pos
        self.adj_pos = adj_pos
        self.comparisons = result.comparisons

    def __len__(self) -> int:
        return len(self.seg)


def make_delta_columnar_handler(
    dodgr: DODGraph,
    delta: AppliedDelta,
    row_kernel,
    callback: Optional[TriangleCallback],
    batch_callback,
    per_triangle_compute: int,
    new_only: bool,
):
    """Owner-side handler of one coalesced delta candidate stream.

    One RPC per (source rank, destination rank, stream): ``rows``/
    ``qpositions`` locate the stream's wedges in the source CSR and
    ``flat_src_pos``/``offsets`` its (filtered, per-wedge segmented)
    candidate positions.  ``new_only=False`` intersects against the full
    destination adjacency, ``new_only=True`` against the delta's new entries
    only; either way matched triangles flow to the reducer as one
    :class:`~repro.graph.metadata.TriangleBatch`.
    """

    def _handler(ctx, src_csr, rows, qpositions, flat_src_pos, offsets) -> None:
        ctx.add_counter("wedge_checks", len(flat_src_pos))
        dest_csr = dodgr.csr(ctx)
        q_rows = dodgr.rows_by_order_id()[src_csr.tgt_ids[qpositions]]
        candidate_ids = src_csr.tgt_ids[flat_src_pos]
        if new_only:
            adjacency, new_to_orig = _delta_row_adjacency(delta, ctx.rank)
        else:
            adjacency = row_adjacency(dest_csr, dodgr.order_count())
        result = row_kernel(candidate_ids, offsets, q_rows, adjacency)
        ctx.add_compute(int(result.comparisons))
        matches = len(result)
        if not matches:
            return
        ctx.add_counter("triangles_found", matches)
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * matches)
        if new_only:
            result = _DeltaStreamResult(
                result, new_to_orig[_np.asarray(result.adj_pos, dtype=_np.int64)]
            )
        batch = columnar_push_batch(
            src_csr, dest_csr, rows, qpositions, q_rows, flat_src_pos, result
        )
        deliver_batch(ctx, batch, callback, batch_callback)

    return _handler


def _sort_wedge_groups(qpos, cand):
    """Group parallel (wedge qpos, candidate pos) pairs by wedge.

    Returns ``(wedge_qpos, counts, flat_cand)``: the distinct wedges in
    ascending qpos order, their candidate counts, and the candidate
    positions concatenated per wedge (ascending within a wedge) — the
    legacy per-wedge message layout.
    """
    order = _np.lexsort((cand, qpos))
    qpos_sorted = qpos[order]
    cand_sorted = cand[order]
    wedge_qpos, counts = _np.unique(qpos_sorted, return_counts=True)
    return wedge_qpos, counts, cand_sorted


def _delta_inverted_index(csr):
    """The rank's target-position index: edge positions sorted by target id.

    ``(sorted target ids, their edge positions, row of every edge)`` — the
    in-adjacency view the old-old-new join probes to find every local pivot
    row holding a given target.  Built once per CSR snapshot and cached on
    the snapshot's ``row_adj_cache``-style slot (the CSR is immutable).
    """
    cached = csr._delta_inv_index
    if cached is None:
        cols = csr.columns()
        lengths = cols.indptr[1:] - cols.indptr[:-1]
        row_of_edge = _np.repeat(_np.arange(csr.num_rows, dtype=_np.int64), lengths)
        inv_order = _np.argsort(csr.tgt_ids, kind="stable")
        cached = (csr.tgt_ids[inv_order], inv_order, row_of_edge)
        csr._delta_inv_index = cached
    return cached


def _positions_of_ids(inv_ids, inv_pos, ids):
    """Ragged lookup: for every id, the edge positions whose target is the id.

    Returns ``(owner, positions)`` where ``positions`` concatenates each
    id's edge positions and ``owner[i]`` is the index into ``ids`` that
    produced ``positions[i]``.
    """
    lo = _np.searchsorted(inv_ids, ids, side="left")
    hi = _np.searchsorted(inv_ids, ids, side="right")
    counts = hi - lo
    gather, _offsets = ragged_gather(lo, counts)
    owner = _np.repeat(_np.arange(ids.size, dtype=_np.int64), counts)
    return owner, inv_pos[gather]


def drive_columnar_delta(
    ctx,
    dodgr: DODGraph,
    delta: AppliedDelta,
    h_full,
    h_new,
    overhead_full: int,
    overhead_new: int,
) -> None:
    """Array-native, delta-proportional driver of one rank's candidate streams.

    Never expands the rank's full wedge stream; instead it assembles exactly
    the candidates the legacy engine would send, from the new-edge positions
    outward:

    * wedges whose q edge is new contribute their whole candidate suffix
      (full-check stream);
    * every new edge position also joins, as a *candidate*, each earlier
      old-q wedge of its pivot row (full-check stream);
    * every new directed pair (q, r) is joined against the rank's inverted
      target index to find the pivot rows holding both endpoints — the
      old-old wedges it closes (new-check stream).

    The three constructions are disjoint and exhaustive, so the messages
    (and their exact serialized sizes, accounted in legacy send order —
    ascending wedge position, full before new) replay the scalar engine
    bit for bit; one batched RPC then flies per (destination rank, stream).
    """
    csr = dodgr.csr(ctx)
    if csr.num_edges == 0:
        return
    cols = csr.columns()
    indptr = cols.indptr
    mask = delta.edge_mask(ctx.rank)
    new_pos = _np.flatnonzero(mask)
    inv_ids, inv_pos, row_of_edge = _delta_inverted_index(csr)

    # --- Full-check stream, part 1: q-new wedges carry their whole suffix.
    rows_a = row_of_edge[new_pos]
    suffix_len = indptr[rows_a + 1] - new_pos - 1
    keep = suffix_len > 0
    qpos_a1 = new_pos[keep]
    len_a1 = suffix_len[keep]
    cand_a1, _off = ragged_gather(qpos_a1 + 1, len_a1)
    wedge_a1 = _np.repeat(qpos_a1, len_a1)

    # --- Full-check stream, part 2: each new position is a candidate of
    # every earlier old-q wedge in its row.
    lo_j = indptr[rows_a]
    before = new_pos - lo_j
    wedge_a2, _off = ragged_gather(lo_j, before)
    cand_a2 = _np.repeat(new_pos, before)
    old_q = ~mask[wedge_a2]
    wedge_a2 = wedge_a2[old_q]
    cand_a2 = cand_a2[old_q]

    full_qpos, full_counts, full_cand = _sort_wedge_groups(
        _np.concatenate((wedge_a1, wedge_a2)), _np.concatenate((cand_a1, cand_a2))
    )

    # --- New-check stream: old-old wedges closed by a new (q, r) pair,
    # found by joining both endpoints against the inverted target index.
    stride = _np.int64(dodgr.order_count())
    new_keys = delta.directed_edge_keys()
    pair_q, pos_q = _positions_of_ids(inv_ids, inv_pos, new_keys // stride)
    pair_r, pos_r = _positions_of_ids(inv_ids, inv_pos, new_keys % stride)
    # Join on (pair, pivot row): a row holds a target at most once, so the
    # composite keys are unique per side.
    comp_q = pair_q * _np.int64(csr.num_rows) + row_of_edge[pos_q]
    comp_r = pair_r * _np.int64(csr.num_rows) + row_of_edge[pos_r]
    oq = _np.argsort(comp_q)
    comp_q, pos_q = comp_q[oq], pos_q[oq]
    orr = _np.argsort(comp_r)
    comp_r, pos_r = comp_r[orr], pos_r[orr]
    at = _np.searchsorted(comp_q, comp_r)
    clipped = _np.minimum(at, max(comp_q.size - 1, 0))
    hit = (
        (at < comp_q.size) & (comp_q[clipped] == comp_r)
        if comp_q.size
        else _np.zeros(comp_r.size, dtype=bool)
    )
    wedge_b = pos_q[clipped[hit]] if comp_q.size else _np.empty(0, dtype=_np.int64)
    cand_b = pos_r[hit]
    both_old = ~mask[wedge_b] & ~mask[cand_b]
    new_qpos, new_counts, new_cand = _sort_wedge_groups(
        wedge_b[both_old], cand_b[both_old]
    )

    streams = []
    for qpos, counts, cand, overhead in (
        (full_qpos, full_counts, full_cand, overhead_full),
        (new_qpos, new_counts, new_cand, overhead_new),
    ):
        if qpos.size == 0:
            streams.append(None)
            continue
        cand_bytes = cols.cand_cumsum[cand + 1] - cols.cand_cumsum[cand]
        byte_cumsum = _np.concatenate(([0], _np.cumsum(cand_bytes)))
        offsets = _np.concatenate(([0], _np.cumsum(counts)))
        sizes = (
            overhead
            + cols.row_wire[row_of_edge[qpos]]
            + cols.tgt_wire[qpos]
            + uvarint_size_array(counts)
            + byte_cumsum[offsets[1:]]
            - byte_cumsum[offsets[:-1]]
        )
        streams.append(
            {
                "qpos": qpos,
                "rows": row_of_edge[qpos],
                "counts": counts,
                "offsets": offsets,
                "cand": cand,
                "sizes": sizes,
                "dests": cols.tgt_owner[qpos],
            }
        )

    live = [s for s in streams if s is not None]
    if not live:
        return
    # Account every replaced legacy message in legacy send order: ascending
    # wedge position (row-major), the full-check message before the
    # new-check message of the same wedge.
    acc_qpos = _np.concatenate([s["qpos"] for s in live])
    acc_kind = _np.concatenate(
        [_np.full(s["qpos"].size, i, dtype=_np.int64) for i, s in enumerate(streams) if s]
    )
    order = _np.lexsort((acc_kind, acc_qpos))
    acc_dests = _np.concatenate([s["dests"] for s in live])[order]
    acc_sizes = _np.concatenate([s["sizes"] for s in live])[order]
    ctx.account_rpc_bulk(acc_dests, acc_sizes)

    for stream, handler in zip(streams, (h_full, h_new)):
        if stream is None:
            continue
        dests = stream["dests"]
        dest_order = _np.argsort(dests, kind="stable")
        dests_sorted = dests[dest_order]
        unique_dests, group_starts = _np.unique(dests_sorted, return_index=True)
        bounds = group_starts.tolist() + [dests_sorted.size]
        # Regroup the candidate sub-stream by destination rank.
        gather, new_offsets = ragged_gather(
            stream["offsets"][:-1][dest_order], stream["counts"][dest_order]
        )
        pos_sorted = stream["cand"][gather]
        rows_sorted = stream["rows"][dest_order]
        qpos_sorted = stream["qpos"][dest_order]
        sizes_sorted = stream["sizes"][dest_order]
        for g, dest in enumerate(unique_dests.tolist()):
            lo, hi = bounds[g], bounds[g + 1]
            ctx.async_call_batched(
                dest,
                handler,
                csr,
                rows_sorted[lo:hi],
                qpos_sorted[lo:hi],
                pos_sorted[new_offsets[lo] : new_offsets[hi]],
                new_offsets[lo : hi + 1] - new_offsets[lo],
                virtual_rpcs=hi - lo,
                virtual_bytes=int(sizes_sorted[lo:hi].sum()),
            )


# ---------------------------------------------------------------------------
# Legacy (scalar reference) engine
# ---------------------------------------------------------------------------


def make_delta_legacy_handlers(
    dodgr: DODGraph,
    intersect,
    callback: Optional[TriangleCallback],
    per_triangle_compute: int,
    new_adj_by_rank,
):
    """Build the scalar reference's (full-check, new-check) handler pair."""

    def _full_intersect_handler(ctx, q, p, meta_p, meta_pq, candidates) -> None:
        """Check filtered candidates against the full Adj^m_+(q)."""
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p, q=q, r=r,
                        meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                        meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                    ),
                )

    def _new_intersect_handler(ctx, q, p, meta_p, meta_pq, candidates) -> None:
        """Check old-old candidates against only the new entries of Adj^m_+(q)."""
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        filtered = new_adj_by_rank[ctx.rank].get(q, ())
        meta_q = record["meta"]
        entries = [entry for entry, _pos in filtered]
        result = intersect(candidates, entries, candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = entries[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p, q=q, r=r,
                        meta_p=meta_p, meta_q=meta_q, meta_r=meta_r,
                        meta_pq=meta_pq, meta_pr=meta_pr, meta_qr=meta_qr,
                    ),
                )

    return _full_intersect_handler, _new_intersect_handler


def drive_legacy_delta(
    ctx,
    dodgr: DODGraph,
    delta: AppliedDelta,
    h_full,
    h_new,
    new_sources: set,
) -> None:
    """Per-wedge scalar drive of one rank's delta candidate streams."""
    store = dodgr.local_store(ctx)
    for p, record in store.items():
        adjacency = record["adj"]
        if len(adjacency) < 2:
            continue
        meta_p = record["meta"]
        new_flags = [delta.is_new(p, entry[0]) for entry in adjacency]
        # suffix_new[i]: any new flag at position >= i (one reverse
        # pass; keeps quiet high-degree rows O(d), not O(d^2)).
        suffix_new = [False] * (len(adjacency) + 1)
        for j in range(len(adjacency) - 1, -1, -1):
            suffix_new[j] = suffix_new[j + 1] or new_flags[j]
        for i in range(len(adjacency) - 1):
            q, _d_q, meta_pq, _meta_q = adjacency[i]
            q_new = new_flags[i]
            q_has_new_out = q in new_sources
            if not q_new and not q_has_new_out and not suffix_new[i + 1]:
                continue
            full_c: List[tuple] = []
            new_c: List[tuple] = []
            for j in range(i + 1, len(adjacency)):
                entry = adjacency[j]
                candidate = (entry[0], entry[1], entry[2])
                if q_new or new_flags[j]:
                    full_c.append(candidate)
                elif q_has_new_out and delta.is_new(q, entry[0]):
                    new_c.append(candidate)
            if full_c:
                ctx.async_call_sized(
                    dodgr.owner(q), h_full, q, p, meta_p, meta_pq, full_c
                )
            if new_c:
                ctx.async_call_sized(
                    dodgr.owner(q), h_new, q, p, meta_p, meta_pq, new_c
                )
