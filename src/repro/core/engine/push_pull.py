"""Push-Pull survey runner: dry run, push and pull phases over the engine layer.

Section 4.4 of the paper as one program, parameterised by an
:class:`~repro.core.engine.registry.EngineSpec`:

1. **Dry run** — every rank counts, per target vertex ``q``, the candidate
   edges it would push; owners compare against ``|Adj+(q)|`` and either
   record the source on ``q``'s pull list or advise it to push.
   ``spec.proposal_style == "batched"`` coalesces the proposals into one
   RPC per (source, dest) rank pair, accounted at exact legacy sizes.
2. **Push** — identical to Push-Only at ``spec.push_style`` granularity,
   skipping targets that will be pulled.
3. **Pull** — owners deliver ``Adj^m_+(q)`` at ``spec.pull_style``
   granularity (see :mod:`repro.core.engine.pull`).

Handler registration order is identical for every engine so that handler
ids — and therefore the serialized size of every dry-run message and the
accounted size of every push/pull message — match the legacy run.  The
per-rank driver state (pivot maps, push-target sets, pull lists) is indexed
by rank and only ever touched from that rank's drive or handlers, which is
what lets the process backend shard ranks across workers without locks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from .driver import drive_push, make_push_intersect_handler
from .program import SurveyProgram, execute_program
from .pull import drive_pull, make_pull_handler
from .registry import EngineSpec, validate_request
from .request import (
    DRY_RUN_PHASE,
    PULL_PHASE,
    PUSH_PHASE,
    SurveyRequest,
    SurveyResult,
)

__all__ = ["build_push_pull_program", "run_push_pull_survey"]


def build_push_pull_program(request: SurveyRequest, spec: EngineSpec) -> SurveyProgram:
    """Compile the Push-Pull survey to a three-phase :class:`SurveyProgram`."""
    validate_request(request, spec)
    dodgr = request.dodgr
    if request.storage is not None:
        dodgr.configure_storage(request.storage)
    world = dodgr.world
    nranks = world.nranks
    callback = request.callback
    per_triangle_compute = request.per_triangle_compute()

    # Per-rank driver-side state for this run -------------------------------
    # pivots_by_target[rank][q] = list of (pivot vertex, index of q in its adj)
    pivots_by_target: List[Dict[Any, List[Tuple[Any, int]]]] = [dict() for _ in range(nranks)]
    # push_targets[rank] = set of target vertices this rank was told to push to
    push_targets: List[Set[Any]] = [set() for _ in range(nranks)]
    # pull_lists[rank][q] = list of source ranks that should receive Adj^m_+(q)
    pull_lists: List[Dict[Any, List[int]]] = [dict() for _ in range(nranks)]

    # ------------------------------------------------------------------
    # Dry-run RPC handlers (engine-independent decision logic)
    # ------------------------------------------------------------------
    def _propose_handler(ctx, q: Any, source_rank: int, candidate_count: int) -> None:
        """Owner of q decides: pull (remember source) or advise push."""
        record = dodgr.local_store(ctx).get(q)
        out_degree = len(record["adj"]) if record is not None else 0
        if record is not None and out_degree < candidate_count:
            pull_lists[ctx.rank].setdefault(q, []).append(source_rank)
        else:
            ctx.async_call_sized(source_rank, _advise_push_handler, q)

    def _advise_push_handler(ctx, q: Any) -> None:
        push_targets[ctx.rank].add(q)

    def _propose_batch_handler(ctx, source_rank: int, pairs: List[Tuple[Any, int]]) -> None:
        """One coalesced dry-run proposal per (source rank, dest rank).

        Carries every ``(q, count)`` pair the source generated for this
        rank's targets, in the source's legacy iteration order, and runs the
        per-pair decision logic unchanged — so pull-list append order and
        advise-reply order match the per-``(rank, q)`` message stream it
        replaces.
        """
        for q, candidate_count in pairs:
            _propose_handler(ctx, q, source_rank, candidate_count)

    # Handler registration order is identical in every mode so that handler
    # ids — and therefore the serialized size of every dry-run message and
    # the accounted size of every push/pull message — match the legacy run.
    batched_proposals = spec.proposal_style == "batched"
    h_propose = world.register_handler(_propose_handler)
    _h_advise = world.register_handler(_advise_push_handler)
    h_intersect = world.register_handler(
        make_push_intersect_handler(
            spec.push_style, dodgr, request.kernel, callback, per_triangle_compute,
            kernel_tier=request.kernel_tier,
        )
    )
    # Occupies the legacy pull handler's registration slot, so the id every
    # accounted pull message serializes is the legacy one.
    h_pull_deliver = world.register_handler(
        make_pull_handler(
            spec.pull_style,
            dodgr,
            request.kernel,
            callback,
            per_triangle_compute,
            pivots_by_target,
            kernel_tier=request.kernel_tier,
        )
    )
    if batched_proposals:
        # Registered last: its id never crosses the accounted wire, so the
        # earlier ids (and every accounted legacy message size) still match
        # the legacy run exactly.
        h_propose_batch = world.register_handler(_propose_batch_handler)

    # ------------------------------------------------------------------
    # Phase 1: Push vs Pull dry run.
    # ------------------------------------------------------------------
    def drive_dry_run(ctx) -> None:
        rank = ctx.rank
        store = dodgr.local_store(ctx)
        candidate_totals: Dict[Any, int] = {}
        targets = pivots_by_target[rank]
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            for i in range(len(adjacency) - 1):
                q = adjacency[i][0]
                suffix_len = len(adjacency) - 1 - i
                targets.setdefault(q, []).append((p, i))
                if dodgr.owner(q) == rank:
                    # Local targets are always pushed (zero wire cost).
                    push_targets[rank].add(q)
                else:
                    candidate_totals[q] = candidate_totals.get(q, 0) + suffix_len
        if batched_proposals:
            # Coalesce proposals: one batched RPC per (source rank, dest
            # rank) carrying every (q, count) pair, accounted — in legacy
            # iteration order, against the real buffer bank — as the exact
            # per-(rank, q) messages it replaces (the BatchedCall contract).
            per_dest: Dict[int, Tuple[List[Tuple[Any, int]], List[int]]] = {}
            for q, total in candidate_totals.items():
                dest = dodgr.owner(q)
                nbytes = world.registry.call_size(h_propose, (q, rank, total))
                ctx.account_rpc(dest, nbytes)
                bucket = per_dest.get(dest)
                if bucket is None:
                    per_dest[dest] = bucket = ([], [0])
                bucket[0].append((q, total))
                bucket[1][0] += nbytes
            for dest, (pairs, (dest_bytes,)) in per_dest.items():
                ctx.async_call_batched(
                    dest,
                    h_propose_batch,
                    rank,
                    pairs,
                    virtual_rpcs=len(pairs),
                    virtual_bytes=dest_bytes,
                )
            # Batched proposals execute in the barrier's first delivery
            # sweep — before its flush pass.  Flush now, exactly where the
            # legacy run's barrier flushes the proposal buffers, so the
            # advise replies meet empty buffers in both paths and the
            # flush-window split (wire_messages, envelope bytes) matches.
            ctx.buffers.flush_all()
        else:
            for q, total in candidate_totals.items():
                ctx.async_call_sized(dodgr.owner(q), h_propose, q, rank, total)

    # ------------------------------------------------------------------
    # Phase 2: Push phase (skip targets that will be pulled).
    # ------------------------------------------------------------------
    def drive_push_phase(ctx) -> None:
        drive_push(
            spec.push_style, ctx, dodgr, h_intersect, allowed=push_targets[ctx.rank]
        )

    # ------------------------------------------------------------------
    # Phase 3: Pull phase (owners broadcast adjacency lists, coalesced).
    # ------------------------------------------------------------------
    def drive_pull_phase(ctx) -> None:
        drive_pull(spec.pull_style, ctx, dodgr, h_pull_deliver, pull_lists[ctx.rank])

    return SurveyProgram(
        algorithm="push_pull",
        request=request,
        spec=spec,
        phases=[
            (DRY_RUN_PHASE, drive_dry_run),
            (PUSH_PHASE, drive_push_phase),
            (PULL_PHASE, drive_pull_phase),
        ],
    )


def run_push_pull_survey(request: SurveyRequest, spec: EngineSpec) -> SurveyResult:
    """Run the Push-Pull triangle survey described by ``request`` on ``spec``."""
    if request.reset_stats:
        request.dodgr.world.reset_stats()
    return execute_program(build_push_pull_program(request, spec))
