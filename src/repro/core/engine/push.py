"""Push-Only survey runner: one driver loop, every engine.

This is Algorithm 1 of the paper expressed over the engine layer: register
the engine's intersect handler, walk every rank's pivots at the engine's
granularity (:func:`~repro.core.engine.driver.drive_push`), barrier, report.
The three near-copies of this loop that used to live in ``core/survey.py``
collapse to the one function below.
"""

from __future__ import annotations

import time

from ..results import SurveyReport
from .driver import drive_push, make_push_intersect_handler
from .registry import EngineSpec
from .request import SurveyRequest, SurveyResult

__all__ = ["run_push_survey"]


def run_push_survey(request: SurveyRequest, spec: EngineSpec) -> SurveyResult:
    """Run the Push-Only triangle survey described by ``request`` on ``spec``."""
    dodgr = request.dodgr
    world = dodgr.world
    callback = request.callback
    per_triangle_compute = request.per_triangle_compute()
    if request.reset_stats:
        world.reset_stats()

    handler = world.register_handler(
        make_push_intersect_handler(
            spec.push_style, dodgr, request.kernel, callback, per_triangle_compute
        )
    )

    # Driver loop: every rank walks its local pivots and pushes suffixes —
    # one coalesced RPC per destination rank (columnar) or (destination, q)
    # group (batched), one RPC per wedge otherwise.
    host_start = time.perf_counter()
    world.begin_phase(request.phase_name)
    for ctx in world.ranks:
        # Cooperative cancellation checkpoint: a service-installed deadline
        # aborts between per-rank batches instead of mid-RPC.
        world.check_deadline()
        drive_push(spec.push_style, ctx, dodgr, handler)
    world.barrier()
    host_seconds = time.perf_counter() - host_start

    simulated = world.simulated_time(phases=[request.phase_name])
    report = SurveyReport.from_world_stats(
        algorithm="push",
        graph_name=request.graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=[request.phase_name],
        host_seconds=host_seconds,
    )
    return SurveyResult(report=report, engine=spec.name, request=request)
