"""Push-Only survey runner: one driver loop, every engine, every backend.

This is Algorithm 1 of the paper expressed over the engine layer: register
the engine's intersect handler, walk every rank's pivots at the engine's
granularity (:func:`~repro.core.engine.driver.drive_push`), barrier, report.
The three near-copies of this loop that used to live in ``core/survey.py``
collapse to the one program below; the loop itself now lives in
:mod:`~repro.core.engine.program`, where the simulated and process backends
share it.
"""

from __future__ import annotations

from .driver import drive_push, make_push_intersect_handler
from .program import SurveyProgram, execute_program
from .registry import EngineSpec, validate_request
from .request import SurveyRequest, SurveyResult

__all__ = ["build_push_program", "run_push_survey"]


def build_push_program(request: SurveyRequest, spec: EngineSpec) -> SurveyProgram:
    """Compile the Push-Only survey to a single-phase :class:`SurveyProgram`.

    Handler registration happens here — before any backend runs (and, for
    the process backend, before it forks), so handler ids and the serialized
    size of every message are identical everywhere.
    """
    validate_request(request, spec)
    dodgr = request.dodgr
    if request.storage is not None:
        dodgr.configure_storage(request.storage)
    world = dodgr.world
    handler = world.register_handler(
        make_push_intersect_handler(
            spec.push_style,
            dodgr,
            request.kernel,
            request.callback,
            request.per_triangle_compute(),
            kernel_tier=request.kernel_tier,
        )
    )

    # Driver phase: every rank walks its local pivots and pushes suffixes —
    # one coalesced RPC per destination rank (columnar) or (destination, q)
    # group (batched), one RPC per wedge otherwise.
    def drive(ctx) -> None:
        drive_push(spec.push_style, ctx, dodgr, handler)

    return SurveyProgram(
        algorithm="push",
        request=request,
        spec=spec,
        phases=[(request.phase_name, drive)],
    )


def run_push_survey(request: SurveyRequest, spec: EngineSpec) -> SurveyResult:
    """Run the Push-Only triangle survey described by ``request`` on ``spec``."""
    if request.reset_stats:
        request.dodgr.world.reset_stats()
    return execute_program(build_push_program(request, spec))
