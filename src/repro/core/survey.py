"""Push-Only triangle survey (Algorithm 1 of the paper).

For every pivot vertex ``p`` the driver walks ``Adj^m_+(p)`` in degree order;
for each neighbour ``q`` it fires a fire-and-forget RPC at the owner of ``q``
carrying the *remaining suffix* of the adjacency list (the candidate ``r``
vertices) together with ``meta(p)`` and ``meta(p, q)``.  The owner of ``q``
merge-path-intersects the candidates against ``Adj^m_+(q)``; every match
closes a triangle Δpqr, and at that moment all six pieces of metadata are
colocated on ``Rank(q)``, so the user callback executes there.

The callback signature is ``callback(ctx, tri)`` where ``ctx`` is the
destination rank's :class:`~repro.runtime.world.RankContext` and ``tri`` is a
:class:`~repro.graph.metadata.TriangleMetadata`.  Callbacks produce results
purely through side effects (distributed counting sets, per-rank counters,
files); the survey itself returns only telemetry (a
:class:`~repro.core.results.SurveyReport`).

Batched engine (``batched=True``)
---------------------------------

The legacy driver sizes (``async_call_sized`` — exact wire accounting, no
codec run), buffers, delivers and intersects one wedge check at a time.  The
batched engine extends the conveyor/YGM aggregation
idea one layer up, from the wire into the compute: every candidate suffix a
rank wants to push to the same ``(destination rank, q)`` pair is coalesced
into a *single* batched RPC, and the owner of ``q`` intersects all of those
suffixes against ``Adj^m_+(q)`` in one vectorized
:func:`~repro.core.intersection.merge_path_batch` call over the
:class:`~repro.graph.dodgr.CSRAdjacency` arrays.  Observable behaviour is
contractually identical to the legacy path — same triangles, same callback
invocations, same per-phase counters, and byte-identical Table 4
communication accounting (each coalesced wedge is accounted as the exact
legacy message it replaces via
:meth:`~repro.runtime.world.RankContext.account_rpc`) — only host wall-clock
changes.  One bound on the contract: if the *callback itself* sends RPCs
mid-survey, all totals (RPC counts, payload bytes, compute) still match,
but those follow-on messages can land in different flush windows, shifting
``wire_messages`` and the per-flush envelope bytes; see
:class:`~repro.runtime.world.BatchedCall` for why, and
``tests/core/test_batched_survey.py`` for the exact invariants pinned in
each regime.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graph.degree import order_key
from ..graph.dodgr import CSRAdjacency, DODGraph, entry_key
from ..graph.metadata import TriangleMetadata
from ..runtime.serialization import serialized_size, uvarint_size
from .intersection import BATCH_KERNELS, INTERSECTION_KERNELS
from .results import SurveyReport

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the list fallback
    _np = None

__all__ = [
    "triangle_survey_push",
    "TriangleCallback",
    "PUSH_PHASE",
    "DEFAULT_CALLBACK_COMPUTE_UNITS",
]

#: Type of a survey callback.
TriangleCallback = Callable[[Any, TriangleMetadata], None]

PUSH_PHASE = "push"

#: Abstract compute units charged per triangle for executing a user callback
#: on its metadata (hashing labels, computing logarithms, updating counting-set
#: caches).  Calibrated so that a metadata survey with a non-trivial callback
#: costs roughly twice the throughput of bare counting on R-MAT weak-scaling
#: inputs, matching the overhead the paper reports in Section 5.9.  Charged
#: only when a callback is supplied; pass ``callback_compute_units=0`` to
#: model a free callback.
DEFAULT_CALLBACK_COMPUTE_UNITS = 10


def _candidate_key(candidate: tuple) -> tuple:
    """Sort key of a pushed candidate entry (r, d_r, meta_pr[, meta_r])."""
    return order_key(candidate[0], candidate[1])


# ---------------------------------------------------------------------------
# Batched engine internals (shared with the Push-Pull driver)
# ---------------------------------------------------------------------------


def _concat_segments(ids, starts: List[int], ends: List[int]):
    """Concatenate ``ids[s:e]`` slices into one flat array plus offsets.

    The CSR/ragged layout consumed by the batch kernels: segment ``w``
    occupies ``flat[offsets[w]:offsets[w + 1]]``.
    """
    if _np is not None:
        starts_arr = _np.asarray(starts, dtype=_np.int64)
        lengths = _np.asarray(ends, dtype=_np.int64) - starts_arr
        offsets = _np.concatenate(([0], _np.cumsum(lengths)))
        total = int(offsets[-1])
        if total == 0:
            return _np.empty(0, dtype=_np.int64), offsets
        index = _np.arange(total, dtype=_np.int64) + _np.repeat(
            starts_arr - offsets[:-1], lengths
        )
        return _np.asarray(ids)[index], offsets
    flat: List[int] = []
    offsets_list = [0]
    for start, end in zip(starts, ends):
        flat.extend(ids[start:end])
        offsets_list.append(len(flat))
    return flat, offsets_list


def _legacy_push_payload_overhead(handler_id: int) -> int:
    """Fixed serialized bytes of a legacy push RPC around its variable parts.

    A legacy wedge message is ``dumps((handler_id, [q, p, meta_p, meta_pq,
    candidates]))``: 2 framing bytes for the outer pair, the handler id, 2
    framing bytes for the argument list, and 1 tag byte for the candidate
    list (whose length prefix and entries are accounted per wedge).
    """
    return 5 + serialized_size(handler_id)


def _make_batched_intersect_handler(
    dodgr: DODGraph,
    batch_kernel,
    callback: Optional["TriangleCallback"],
    per_triangle_compute: int,
):
    """Build the owner-side handler of one batched candidate push.

    The handler receives every wedge a source rank generated for one target
    vertex ``q``: ``rows``/``qpositions`` locate the pivots and their ``q``
    entries inside the *source* rank's :class:`CSRAdjacency`, and each
    pivot's candidate suffix is the edge range after ``qpositions[w]``.  All
    suffixes are intersected against ``Adj^m_+(q)`` in one batch-kernel
    call; matches close triangles exactly as in the legacy handler.
    """

    def _batched_intersect_handler(
        ctx,
        q: Any,
        src_csr: CSRAdjacency,
        rows: List[int],
        qpositions: List[int],
    ) -> None:
        starts = [pos + 1 for pos in qpositions]
        ends = [src_csr.indptr[row + 1] for row in rows]
        ctx.add_counter(
            "wedge_checks", sum(end - start for start, end in zip(starts, ends))
        )
        dest_csr = dodgr.csr(ctx)
        q_row = dest_csr.row_of(q)
        if q_row is None:
            return
        adj_lo, adj_hi = dest_csr.row_slice(q_row)
        candidate_ids, offsets = _concat_segments(src_csr.tgt_ids, starts, ends)
        result = batch_kernel(candidate_ids, offsets, dest_csr.tgt_ids[adj_lo:adj_hi])
        ctx.add_compute(result.comparisons)
        if not result.matches:
            return
        # Counter totals are phase-aggregate, so one bulk update per batch
        # replaces two Python calls per triangle.
        ctx.add_counter("triangles_found", len(result.matches))
        if callback is None:
            return
        ctx.add_compute(per_triangle_compute * len(result.matches))
        meta_q = dest_csr.row_meta[q_row]
        for wedge, cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr, _ = src_csr.entries[starts[wedge] + cand_idx]
            _, _, meta_qr, meta_r = dest_csr.entries[adj_lo + adj_idx]
            row = rows[wedge]
            callback(
                ctx,
                TriangleMetadata(
                    p=src_csr.row_vertices[row],
                    q=q,
                    r=r,
                    meta_p=src_csr.row_meta[row],
                    meta_q=meta_q,
                    meta_r=meta_r,
                    meta_pq=src_csr.entries[qpositions[wedge]][2],
                    meta_pr=meta_pr,
                    meta_qr=meta_qr,
                ),
            )

    return _batched_intersect_handler


def _drive_batched_push(
    ctx,
    csr: CSRAdjacency,
    handler,
    payload_overhead: int,
    allowed=None,
) -> None:
    """Walk one rank's pivots, accounting and coalescing its candidate pushes.

    Every wedge is accounted (in legacy iteration order, so buffer flush
    boundaries replay exactly) via ``ctx.account_rpc`` with the precise
    serialized size of the per-wedge message it replaces, then appended to
    its ``(destination rank, q)`` group; one batched RPC per group follows.
    ``allowed`` restricts targets (the Push-Pull push phase skips targets
    that will be pulled); ``None`` pushes to every target.
    """
    groups: Dict[Tuple[int, Any], Tuple[List[int], List[int], List[int]]] = {}
    indptr = csr.indptr
    entries = csr.entries
    owners = csr.tgt_owner
    tgt_sizes = csr.tgt_wire_sizes
    row_sizes = csr.row_wire_sizes
    for row in range(csr.num_rows):
        lo, hi = indptr[row], indptr[row + 1]
        if hi - lo < 2:
            continue
        row_overhead = payload_overhead + row_sizes[row]
        for pos in range(lo, hi - 1):
            q = entries[pos][0]
            if allowed is not None and q not in allowed:
                continue
            dest = owners[pos]
            size = (
                row_overhead
                + tgt_sizes[pos]
                + uvarint_size(hi - 1 - pos)
                + csr.suffix_wire_bytes(pos, hi)
            )
            ctx.account_rpc(dest, size)
            group = groups.get((dest, q))
            if group is None:
                groups[(dest, q)] = group = ([], [], [0])
            group[0].append(row)
            group[1].append(pos)
            group[2][0] += size
    for (dest, q), (rows, qpositions, (group_bytes,)) in groups.items():
        ctx.async_call_batched(
            dest,
            handler,
            q,
            csr,
            rows,
            qpositions,
            virtual_rpcs=len(rows),
            virtual_bytes=group_bytes,
        )


def triangle_survey_push(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    phase_name: str = PUSH_PHASE,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
    batched: bool = False,
) -> SurveyReport:
    """Run the Push-Only triangle survey over ``dodgr``.

    Parameters
    ----------
    dodgr:
        The degree-ordered directed graph built by :meth:`DODGraph.build`.
    callback:
        ``callback(ctx, tri)`` executed for every triangle on the rank where
        it is identified.  ``None`` counts triangles only (the telemetry's
        ``triangles`` field is always maintained).
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); the paper's system uses merge-path.
    reset_stats:
        Clear the world's counters before running so the report reflects only
        this survey (set False to accumulate, e.g. when measuring end-to-end
        pipelines including construction).
    phase_name:
        Name of the measurement phase the survey's counters accumulate under
        (default ``"push"``).
    callback_compute_units:
        Abstract compute units charged per identified triangle when a
        callback is supplied (see :data:`DEFAULT_CALLBACK_COMPUTE_UNITS`).
    batched:
        Run the batched engine: candidate pushes are coalesced per
        ``(destination rank, q)`` and intersected with the vectorized batch
        kernels over the CSR adjacency.  Identical results and identical
        communication/compute accounting (byte-identical in every counter
        unless the callback itself sends RPCs, in which case only the
        flush-window split of follow-on messages may shift — see the module
        docstring), faster host wall-clock.
    """
    world = dodgr.world
    per_triangle_compute = callback_compute_units if callback is not None else 0
    if reset_stats:
        world.reset_stats()

    intersect = INTERSECTION_KERNELS[kernel]

    # ------------------------------------------------------------------
    # RPC handler executed on Rank(q): intersect the pushed candidates with
    # Adj^m_+(q) and run the callback for every match.
    # ------------------------------------------------------------------
    def _intersect_handler(
        ctx,
        q: Any,
        p: Any,
        meta_p: Any,
        meta_pq: Any,
        candidates: List[tuple],
    ) -> None:
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, _candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p,
                        q=q,
                        r=r,
                        meta_p=meta_p,
                        meta_q=meta_q,
                        meta_r=meta_r,
                        meta_pq=meta_pq,
                        meta_pr=meta_pr,
                        meta_qr=meta_qr,
                    ),
                )

    if batched:
        handler = world.register_handler(
            _make_batched_intersect_handler(
                dodgr, BATCH_KERNELS[kernel], callback, per_triangle_compute
            )
        )
        payload_overhead = _legacy_push_payload_overhead(handler.handler_id)
    else:
        handler = world.register_handler(_intersect_handler)

    # ------------------------------------------------------------------
    # Driver loop: every rank walks its local pivots and pushes suffixes —
    # one coalesced RPC per (destination, q) group when batched, one RPC
    # per wedge otherwise.
    # ------------------------------------------------------------------
    host_start = time.perf_counter()
    world.begin_phase(phase_name)
    for ctx in world.ranks:
        if batched:
            _drive_batched_push(ctx, dodgr.csr(ctx), handler, payload_overhead)
            continue
        store = dodgr.local_store(ctx)
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            meta_p = record["meta"]
            for i in range(len(adjacency) - 1):
                q, _d_q, meta_pq, _meta_q = adjacency[i]
                # Candidate entries drop meta(r): Rank(q) already stores
                # meta(r) in Adj^m_+(q) whenever Δpqr exists (Section 4.3).
                candidates = [
                    (entry[0], entry[1], entry[2]) for entry in adjacency[i + 1 :]
                ]
                # Sized delivery: exact legacy wire accounting, no codec run
                # for what is (in-process) an accounting-only payload.
                ctx.async_call_sized(dodgr.owner(q), handler, q, p, meta_p, meta_pq, candidates)
    world.barrier()
    host_seconds = time.perf_counter() - host_start

    simulated = world.simulated_time(phases=[phase_name])
    return SurveyReport.from_world_stats(
        algorithm="push",
        graph_name=graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=[phase_name],
        host_seconds=host_seconds,
    )
