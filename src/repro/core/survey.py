"""Push-Only triangle survey (Algorithm 1 of the paper).

For every pivot vertex ``p`` the driver walks ``Adj^m_+(p)`` in degree order;
for each neighbour ``q`` it fires a fire-and-forget RPC at the owner of ``q``
carrying the *remaining suffix* of the adjacency list (the candidate ``r``
vertices) together with ``meta(p)`` and ``meta(p, q)``.  The owner of ``q``
merge-path-intersects the candidates against ``Adj^m_+(q)``; every match
closes a triangle Δpqr, and at that moment all six pieces of metadata are
colocated on ``Rank(q)``, so the user callback executes there.

The callback signature is ``callback(ctx, tri)`` where ``ctx`` is the
destination rank's :class:`~repro.runtime.world.RankContext` and ``tri`` is a
:class:`~repro.graph.metadata.TriangleMetadata`.  Callbacks produce results
purely through side effects (distributed counting sets, per-rank counters,
files); the survey itself returns only telemetry (a
:class:`~repro.core.results.SurveyReport`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional

from ..graph.degree import order_key
from ..graph.dodgr import DODGraph, entry_key
from ..graph.metadata import TriangleMetadata
from .intersection import INTERSECTION_KERNELS
from .results import SurveyReport

__all__ = [
    "triangle_survey_push",
    "TriangleCallback",
    "PUSH_PHASE",
    "DEFAULT_CALLBACK_COMPUTE_UNITS",
]

#: Type of a survey callback.
TriangleCallback = Callable[[Any, TriangleMetadata], None]

PUSH_PHASE = "push"

#: Abstract compute units charged per triangle for executing a user callback
#: on its metadata (hashing labels, computing logarithms, updating counting-set
#: caches).  Calibrated so that a metadata survey with a non-trivial callback
#: costs roughly twice the throughput of bare counting on R-MAT weak-scaling
#: inputs, matching the overhead the paper reports in Section 5.9.  Charged
#: only when a callback is supplied; pass ``callback_compute_units=0`` to
#: model a free callback.
DEFAULT_CALLBACK_COMPUTE_UNITS = 10


def _candidate_key(candidate: tuple) -> tuple:
    """Sort key of a pushed candidate entry (r, d_r, meta_pr[, meta_r])."""
    return order_key(candidate[0], candidate[1])


def triangle_survey_push(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    phase_name: str = PUSH_PHASE,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
) -> SurveyReport:
    """Run the Push-Only triangle survey over ``dodgr``.

    Parameters
    ----------
    dodgr:
        The degree-ordered directed graph built by :meth:`DODGraph.build`.
    callback:
        ``callback(ctx, tri)`` executed for every triangle on the rank where
        it is identified.  ``None`` counts triangles only (the telemetry's
        ``triangles`` field is always maintained).
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); the paper's system uses merge-path.
    reset_stats:
        Clear the world's counters before running so the report reflects only
        this survey (set False to accumulate, e.g. when measuring end-to-end
        pipelines including construction).
    """
    world = dodgr.world
    intersect = INTERSECTION_KERNELS[kernel]
    per_triangle_compute = callback_compute_units if callback is not None else 0
    if reset_stats:
        world.reset_stats()

    # ------------------------------------------------------------------
    # RPC handler executed on Rank(q): intersect the pushed candidates with
    # Adj^m_+(q) and run the callback for every match.
    # ------------------------------------------------------------------
    def _intersect_handler(
        ctx,
        q: Any,
        p: Any,
        meta_p: Any,
        meta_pq: Any,
        candidates: List[tuple],
    ) -> None:
        record = dodgr.local_store(ctx).get(q)
        ctx.add_counter("wedge_checks", len(candidates))
        if record is None:
            return
        adjacency = record["adj"]
        meta_q = record["meta"]
        result = intersect(candidates, adjacency, _candidate_key, entry_key)
        ctx.add_compute(result.comparisons)
        for cand_idx, adj_idx in result.matches:
            r, _d_r, meta_pr = candidates[cand_idx]
            _, _, meta_qr, meta_r = adjacency[adj_idx]
            ctx.add_counter("triangles_found", 1)
            if callback is not None:
                ctx.add_compute(per_triangle_compute)
                callback(
                    ctx,
                    TriangleMetadata(
                        p=p,
                        q=q,
                        r=r,
                        meta_p=meta_p,
                        meta_q=meta_q,
                        meta_r=meta_r,
                        meta_pq=meta_pq,
                        meta_pr=meta_pr,
                        meta_qr=meta_qr,
                    ),
                )

    handler = world.register_handler(_intersect_handler)

    # ------------------------------------------------------------------
    # Driver loop: every rank walks its local pivots and pushes suffixes.
    # ------------------------------------------------------------------
    host_start = time.perf_counter()
    world.begin_phase(phase_name)
    for ctx in world.ranks:
        store = dodgr.local_store(ctx)
        for p, record in store.items():
            adjacency = record["adj"]
            if len(adjacency) < 2:
                continue
            meta_p = record["meta"]
            for i in range(len(adjacency) - 1):
                q, _d_q, meta_pq, _meta_q = adjacency[i]
                # Candidate entries drop meta(r): Rank(q) already stores
                # meta(r) in Adj^m_+(q) whenever Δpqr exists (Section 4.3).
                candidates = [
                    (entry[0], entry[1], entry[2]) for entry in adjacency[i + 1 :]
                ]
                ctx.async_call(dodgr.owner(q), handler, q, p, meta_p, meta_pq, candidates)
    world.barrier()
    host_seconds = time.perf_counter() - host_start

    simulated = world.simulated_time(phases=[phase_name])
    return SurveyReport.from_world_stats(
        algorithm="push",
        graph_name=graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=[phase_name],
        host_seconds=host_seconds,
    )
