"""Push-Only triangle survey (Algorithm 1 of the paper).

For every pivot vertex ``p`` the driver walks ``Adj^m_+(p)`` in degree order;
for each neighbour ``q`` it fires a fire-and-forget RPC at the owner of ``q``
carrying the *remaining suffix* of the adjacency list (the candidate ``r``
vertices) together with ``meta(p)`` and ``meta(p, q)``.  The owner of ``q``
merge-path-intersects the candidates against ``Adj^m_+(q)``; every match
closes a triangle Δpqr, and at that moment all six pieces of metadata are
colocated on ``Rank(q)``, so the user callback executes there.

The callback signature is ``callback(ctx, tri)`` where ``ctx`` is the
destination rank's :class:`~repro.runtime.world.RankContext` and ``tri`` is a
:class:`~repro.graph.metadata.TriangleMetadata`.  Callbacks produce results
purely through side effects (distributed counting sets, per-rank counters,
files); the survey itself returns only telemetry (a
:class:`~repro.core.results.SurveyReport`).

Execution engines
-----------------

This module is a thin entry point over the unified survey-execution layer
in :mod:`repro.core.engine`: the ``engine=`` keyword selects a registered
:class:`~repro.core.engine.EngineSpec` (``legacy``, ``batched``,
``columnar``, ``columnar-pull``, plus anything added through
:func:`~repro.core.engine.register_engine`), and
:func:`~repro.core.engine.push.run_push_survey` executes the request on the
shared driver core.  Every engine shares the equivalence contract: same
triangles, same callback invocations, same per-phase counters, and
byte-identical Table 4 communication accounting (each coalesced message is
accounted as the exact legacy messages it replaces).  One bound on the
contract: if the *callback itself* sends RPCs mid-survey, all totals (RPC
counts, payload bytes, compute) still match, but those follow-on messages
can land in different flush windows, shifting ``wire_messages`` and the
per-flush envelope bytes; see :class:`~repro.runtime.world.BatchedCall` for
why, and ``tests/core/test_batched_survey.py`` for the exact invariants
pinned in each regime.

The ``batched=`` boolean (PR 1's selector) is deprecated: pass
``engine="batched"`` instead.  It keeps one release of back-compat, mapping
to ``engine="batched"``/``engine="legacy"`` with a ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..graph.dodgr import DODGraph
from .engine import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    PUSH_PHASE,
    SurveyRequest,
    TriangleCallback,
    engine_names,
    resolve_backend,
    resolve_batch_callback,
    resolve_engine,
    split_backend_selector,
    split_engine_selector,
    split_execution_selector,
)
from .engine.push import run_push_survey
from .results import SurveyReport

__all__ = [
    "triangle_survey_push",
    "TriangleCallback",
    "PUSH_PHASE",
    "DEFAULT_CALLBACK_COMPUTE_UNITS",
    "SURVEY_ENGINES",
    "resolve_batch_callback",
]

#: The built-in survey execution engines, in increasing order of aggregation:
#: ``legacy`` sends and intersects one wedge at a time, ``batched`` (PR 1)
#: coalesces pushes per (destination rank, target vertex), ``columnar``
#: (PR 3) coalesces per (source rank, destination rank) pair and delivers
#: triangles to reducers as column batches, ``columnar-pull`` composes the
#: batched push phases with the columnar pull phase.  Snapshot taken at
#: import; :func:`repro.core.engine.engine_names` is the live registry view.
SURVEY_ENGINES = engine_names()


def _handle_deprecated_batched(batched: Optional[bool]) -> bool:
    """Map PR 1's ``batched=`` boolean to the engine selector, warning once per
    call site.  ``None`` (the default) means the keyword was not passed.

    Callers must be exactly one frame below the user (the direct entry
    points, and the ``triangle_survey`` dispatcher — which translates the
    flag itself rather than forwarding it — both are): ``stacklevel=3``
    then attributes the warning to the user's call site, so Python's
    default filters actually display the one-release back-compat notice.
    """
    if batched is None:
        return False
    warnings.warn(
        "the batched= boolean is deprecated; select the engine explicitly "
        "with engine='batched' (or engine='legacy')",
        DeprecationWarning,
        stacklevel=3,
    )
    return bool(batched)


def triangle_survey_push(
    dodgr: DODGraph,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    phase_name: str = PUSH_PHASE,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
    batched: Optional[bool] = None,
    engine=None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    kernel_tier: Optional[str] = None,
    storage=None,
) -> SurveyReport:
    """Run the Push-Only triangle survey over ``dodgr``.

    Parameters
    ----------
    dodgr:
        The degree-ordered directed graph built by :meth:`DODGraph.build`.
    callback:
        ``callback(ctx, tri)`` executed for every triangle on the rank where
        it is identified.  ``None`` counts triangles only (the telemetry's
        ``triangles`` field is always maintained).
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``); the paper's system uses merge-path.
    reset_stats:
        Clear the world's counters before running so the report reflects only
        this survey (set False to accumulate, e.g. when measuring end-to-end
        pipelines including construction).
    phase_name:
        Name of the measurement phase the survey's counters accumulate under
        (default ``"push"``).
    callback_compute_units:
        Abstract compute units charged per identified triangle when a
        callback is supplied (see :data:`DEFAULT_CALLBACK_COMPUTE_UNITS`).
    batched:
        Deprecated PR 1 selector; ``batched=True`` maps to
        ``engine="batched"`` with a ``DeprecationWarning``.  Use ``engine=``.
    engine:
        Engine selector: a registered engine name (``"legacy"`` — the
        default, ``"batched"``, ``"columnar"``, ``"columnar-pull"``, ...),
        an :class:`~repro.core.engine.EngineSpec`, or an
        :class:`~repro.core.engine.EngineConfig` (which also pins ``kernel``
        and ``callback_compute_units``).  Engines whose callbacks define a
        ``callback_batch`` counterpart (see
        :func:`~repro.core.engine.resolve_batch_callback`) receive triangles
        as :class:`~repro.graph.metadata.TriangleBatch` columns where the
        engine delivers columnar batches; callbacks without one run
        unchanged via the scalar fallback.  Every engine shares the
        equivalence contract described in the module docstring.
    backend:
        Execution backend: ``"simulated"`` (default, the single-process
        oracle) or ``"process"`` (rank-sharded forked workers over shared
        memory; bit-identical reducer panels, byte-identical wire totals).
        An :class:`~repro.core.engine.EngineConfig` with a set ``backend``
        field overrides this keyword.
    workers:
        Worker-process count for ``backend="process"`` (``None`` = auto:
        capped at four, the host's cores and the rank count).
    kernel_tier:
        Intersection kernel tier (``"compiled"``, ``"columnar"``,
        ``"scalar"``; ``None``/``"auto"`` = the engine's best available).
        Tiers are interchangeable under the equivalence contract —
        unavailable ones (no numba wheel) downgrade along
        ``compiled -> columnar -> scalar``.
    storage:
        CSR storage mode: ``None``/``"resident"`` (in-memory, the default)
        or ``"mmap"`` (columns spilled to tracked memmap segments), or a
        :class:`~repro.graph.ooc.StorageConfig` pinning a memory budget and
        segment directory.  ``"mmap"`` requires the simulated backend.
    """
    backend, workers = split_backend_selector(engine, backend, workers)
    kernel_tier, storage = split_execution_selector(engine, kernel_tier, storage)
    engine, kernel, callback_compute_units = split_engine_selector(
        engine, kernel, callback_compute_units
    )
    spec = resolve_engine(engine, batched=_handle_deprecated_batched(batched))
    request = SurveyRequest(
        dodgr=dodgr,
        callback=callback,
        algorithm="push",
        kernel=kernel,
        reset_stats=reset_stats,
        graph_name=graph_name,
        phase_name=phase_name,
        callback_compute_units=callback_compute_units,
        backend=resolve_backend(backend),
        workers=workers,
        kernel_tier=kernel_tier,
        storage=storage,
    )
    return run_push_survey(request, spec).report
