"""TriPoll core: triangle surveys over decorated temporal graphs.

The primary entry points are:

* :func:`~repro.core.push_pull.triangle_survey` — dispatch to either
  algorithm;
* :func:`~repro.core.survey.triangle_survey_push` — the Push-Only algorithm
  (Algorithm 1);
* :func:`~repro.core.push_pull.triangle_survey_push_pull` — the Push-Pull
  optimisation (Section 4.4);
* the callback classes in :mod:`repro.core.callbacks` implementing the
  paper's surveys (counting, closure times, FQDN tuples, degree triples...).

Survey execution is owned by the engine layer in :mod:`repro.core.engine`:
engines are registered :class:`~repro.core.engine.EngineSpec` compositions
resolved by name (``engine="legacy"/"batched"/"columnar"/"columnar-pull"``)
or through an :class:`~repro.core.engine.EngineConfig`, the one selector
threaded through ``analysis/*``, ``bench/*`` and the benchmark CLIs.
"""

from .approximate import (
    ApproximateCount,
    SurvivorEstimate,
    approximate_triangle_count,
    sparsify_graph,
    survivor_triangle_estimate,
)
from .callbacks import (
    REDUCER_REGISTRY,
    ClosureTimeSurvey,
    DegreeTripleSurvey,
    EdgeSupportCounter,
    FqdnTripleSurvey,
    LocalTriangleCounter,
    MaxEdgeLabelDistribution,
    TriangleCounter,
    get_reducer,
    log2_bucket,
    log2_bucket_array,
    merge_count_dicts,
    reducer_names,
    registered_reducers,
)
from .engine import (
    EngineConfig,
    EngineSpec,
    SurveyRequest,
    SurveyResult,
    engine_names,
    execute_survey,
    register_engine,
    registered_engines,
    resolve_engine,
)
from .incremental import (
    DELTA_PUSH_PHASE,
    INCREMENTAL_ENGINES,
    StreamingStep,
    StreamingSurvey,
    incremental_triangle_survey,
)
from .intersection import (
    BATCH_KERNELS,
    INTERSECTION_KERNELS,
    ROW_KERNELS,
    IntersectionResult,
    binary_search_intersection,
    hash_intersection,
    merge_path_intersection,
)
from .push_pull import (
    DRY_RUN_PHASE,
    PULL_PHASE,
    PUSH_PHASE,
    triangle_survey,
    triangle_survey_push_pull,
)
from .results import SurveyReport
from .survey import (
    SURVEY_ENGINES,
    TriangleCallback,
    resolve_batch_callback,
    triangle_survey_push,
)
from .wedges import per_rank_wedge_counts, wedge_count, wedge_count_from_edges, work_rate

__all__ = [
    "triangle_survey",
    "triangle_survey_push",
    "triangle_survey_push_pull",
    "incremental_triangle_survey",
    "StreamingSurvey",
    "StreamingStep",
    "INCREMENTAL_ENGINES",
    "DELTA_PUSH_PHASE",
    "merge_count_dicts",
    "approximate_triangle_count",
    "sparsify_graph",
    "ApproximateCount",
    "SurvivorEstimate",
    "survivor_triangle_estimate",
    "SurveyReport",
    "TriangleCallback",
    "TriangleCounter",
    "LocalTriangleCounter",
    "EdgeSupportCounter",
    "MaxEdgeLabelDistribution",
    "ClosureTimeSurvey",
    "DegreeTripleSurvey",
    "FqdnTripleSurvey",
    "log2_bucket",
    "log2_bucket_array",
    "REDUCER_REGISTRY",
    "reducer_names",
    "registered_reducers",
    "get_reducer",
    "merge_path_intersection",
    "binary_search_intersection",
    "hash_intersection",
    "IntersectionResult",
    "INTERSECTION_KERNELS",
    "BATCH_KERNELS",
    "ROW_KERNELS",
    "SURVEY_ENGINES",
    "EngineSpec",
    "EngineConfig",
    "SurveyRequest",
    "SurveyResult",
    "register_engine",
    "resolve_engine",
    "registered_engines",
    "engine_names",
    "execute_survey",
    "resolve_batch_callback",
    "wedge_count",
    "per_rank_wedge_counts",
    "wedge_count_from_edges",
    "work_rate",
    "DRY_RUN_PHASE",
    "PUSH_PHASE",
    "PULL_PHASE",
]
