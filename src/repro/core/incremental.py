"""Incremental triangle surveys: delta-only enumeration over edge batches.

A full survey re-enumerates every triangle of the graph.  When a batch of
edges arrives on an already-surveyed graph, only the triangles *containing at
least one new edge* are unseen — on a large graph with a small batch that is
a vanishing fraction of the wedge work.  This module surveys exactly those
delta triangles, each exactly once, reusing the engine layer's shared driver
core (:mod:`repro.core.engine`), the columnar row kernels and the
:class:`~repro.graph.metadata.TriangleBatch` delivery path.

Delta wedge decomposition
-------------------------

The push algorithm identifies each triangle Δpqr (``p <+ q <+ r``) through
its unique wedge: pivot ``p`` pushes candidate ``r`` at the owner of ``q``.
A triangle is a *delta* triangle when at least one of its three edges is
new.  The wedge sees the (p, q) and (p, r) edges on the pivot side and the
(q, r) edge on the owner side, which splits every candidate into exactly one
of three outcomes:

* ``new(p,q) or new(p,r)`` — the candidate is checked against the **full**
  ``Adj^m_+(q)``: any match is a delta triangle (new-new-new, new-new-old
  and most new-old-old cases);
* otherwise, if the directed pair ``(q, r)`` is itself a new edge — the
  candidate closes the old-old-new case.  The pivot holds both endpoints of
  the closing pair in its own adjacency and the applied batch
  (:class:`~repro.graph.delta.AppliedDelta`) is global knowledge (in a real
  deployment it was just broadcast through the ingest path), so this test
  runs *sender-side*; only the closing candidates are shipped, and the owner
  of ``q`` resolves them against its **new entries only** for the (q, r)
  metadata;
* otherwise the candidate is dropped: no edge of any triangle it could
  close is new.

Each delta triangle is reached by exactly one candidate in exactly one of
the first two streams, so the enumeration is exact — no misses, no double
counting.

Engines and accounting
----------------------

The ``engine=`` selector resolves through the same registry as the full
surveys (:func:`~repro.core.engine.resolve_incremental_engine`); an
engine's ``incremental_style`` picks the implementation in
:mod:`repro.core.engine.delta`:

* ``legacy`` — the scalar reference: one sized RPC per (wedge, stream)
  carrying the filtered candidate tuples, intersected per message with the
  scalar kernels.  This is the parity oracle.
* ``columnar`` (also what ``columnar-pull`` maps to — a delta survey has no
  pull phase) — the fast path: candidate selection as boolean array masks
  over the CSR edge positions (via
  :meth:`~repro.graph.delta.AppliedDelta.edge_mask`), one coalesced RPC per
  (source rank, destination rank, stream), intersection through
  :data:`~repro.core.intersection.ROW_KERNELS`, and triangles delivered as
  lazy :class:`~repro.graph.metadata.TriangleBatch` columns to
  ``callback_batch`` reducers.  Every replaced legacy message is accounted —
  in legacy send order, through the real buffer bank — at its exact
  serialized size, so the two engines report identical communication
  counters (same bound as the full engines when callbacks send RPCs).

On the first batch of a stream every edge is new, every candidate lands in
the full-check stream, and the incremental survey degenerates to exactly the
full push survey — counters included (pinned in
``tests/core/test_incremental.py``).

Replay parity
-------------

Because ingestion is first-write-wins (edge and vertex metadata never
mutate), replaying a batch schedule through incremental surveys and merging
the per-batch reducer snapshots is bit-identical to a full recompute on the
merged graph at every step, for every reducer whose keys do not depend on
the p/q/r *role order* (all seven stock reducers except
:class:`~repro.core.callbacks.DegreeTripleSurvey`, whose triple is
role-ordered and whose degree decoration is itself a snapshot in time).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..graph.delta import AppliedDelta, DeltaBuffer
from ..graph.distributed_graph import DistributedGraph
from ..graph.dodgr import DODGraph
from .engine import (
    DEFAULT_CALLBACK_COMPUTE_UNITS,
    DELTA_PUSH_PHASE,
    EngineConfig,
    TriangleCallback,
    incremental_engine_names,
    resolve_batch_callback,
    resolve_incremental_engine,
    split_backend_selector,
    split_engine_selector,
)
from .engine.delta import (
    drive_columnar_delta,
    drive_legacy_delta,
    make_delta_columnar_handler,
    make_delta_legacy_handlers,
    new_source_vertices,
)
from .engine.driver import legacy_push_payload_overhead
from .intersection import INTERSECTION_KERNELS, row_kernel as select_row_kernel
from .results import SurveyReport

__all__ = [
    "incremental_triangle_survey",
    "INCREMENTAL_ENGINES",
    "DELTA_PUSH_PHASE",
    "StreamingSurvey",
    "StreamingStep",
]

#: Engines with an incremental (delta-survey) form, snapshotted at import;
#: :func:`repro.core.engine.incremental_engine_names` is the live view.
INCREMENTAL_ENGINES = incremental_engine_names()


def incremental_triangle_survey(
    dodgr: DODGraph,
    delta: AppliedDelta,
    callback: Optional[TriangleCallback] = None,
    kernel: str = "merge_path",
    reset_stats: bool = True,
    graph_name: Optional[str] = None,
    phase_name: str = DELTA_PUSH_PHASE,
    callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
    engine=None,
    kernel_tier: Optional[str] = None,
) -> SurveyReport:
    """Survey exactly the triangles that contain at least one edge of ``delta``.

    Parameters
    ----------
    dodgr:
        The rebuilt degree-ordered graph, i.e. ``delta.dodgr``.
    delta:
        The applied edge batch (:meth:`~repro.graph.delta.DeltaBuffer.apply`).
    callback:
        ``callback(ctx, tri)`` executed once per *delta* triangle on the rank
        where it is identified; reducers with a ``callback_batch``
        counterpart receive columnar :class:`TriangleBatch` deliveries under
        the columnar engine.  ``None`` counts delta triangles only.
    kernel:
        Intersection kernel name (``merge_path``, ``binary_search``,
        ``hash``).
    engine:
        Engine selector (name or :class:`~repro.core.engine.EngineConfig`)
        resolved against the engine registry; the engine's
        ``incremental_style`` — ``"legacy"`` (scalar reference) or
        ``"columnar"`` (default when NumPy is available) — picks the
        implementation.  Both produce identical triangles, reducer
        deliveries and communication counters — see the module docstring.
    kernel_tier:
        Row-kernel implementation tier for the columnar style
        (``"compiled"``/``"columnar"``/``"scalar"``; ``None``/``"auto"`` =
        best available); the legacy style has only its scalar form.

    Remaining parameters match :func:`~repro.core.survey.triangle_survey_push`.
    Returns a :class:`~repro.core.results.SurveyReport` whose ``triangles``/
    ``wedge_checks`` count only the delta work of this batch.
    """
    if delta.dodgr is not dodgr:
        raise ValueError("delta was applied against a different DODGraph")
    world = dodgr.world
    backend, _workers = split_backend_selector(engine, None, None)
    if backend not in (None, "simulated"):
        from ..runtime.backend import UnsupportedBackendError

        raise UnsupportedBackendError(
            "incremental (delta) surveys run on backend='simulated' only: "
            "the delta drive executes outside the SurveyProgram layer the "
            "process backend shards.  Run full surveys on backend='process' "
            "and delta batches on the default backend."
        )
    if isinstance(engine, EngineConfig) and engine.kernel_tier is not None:
        kernel_tier = engine.kernel_tier
    engine, kernel, callback_compute_units = split_engine_selector(
        engine, kernel, callback_compute_units
    )
    style = resolve_incremental_engine(engine).incremental_style
    per_triangle_compute = callback_compute_units if callback is not None else 0
    if reset_stats:
        world.reset_stats()

    # Handler registration order is fixed (full first, new second) in both
    # engines, so handler ids — and every accounted message size — match.
    if style == "columnar":
        row_kernel = select_row_kernel(kernel, kernel_tier)
        batch_callback = resolve_batch_callback(callback)
        h_full = world.register_handler(
            make_delta_columnar_handler(
                dodgr, delta, row_kernel, callback, batch_callback,
                per_triangle_compute, new_only=False,
            )
        )
        h_new = world.register_handler(
            make_delta_columnar_handler(
                dodgr, delta, row_kernel, callback, batch_callback,
                per_triangle_compute, new_only=True,
            )
        )
    else:
        # Owner-side new-entry views of the scalar engine, precomputed so
        # mid-drive buffer flushes (which execute handlers) never observe a
        # partially built cache.  The columnar engine derives its filtered
        # RowAdjacency from the edge masks instead.
        new_adj_by_rank = [delta.new_adjacency(r) for r in range(world.nranks)]
        full_handler, new_handler = make_delta_legacy_handlers(
            dodgr,
            INTERSECTION_KERNELS[kernel],
            callback,
            per_triangle_compute,
            new_adj_by_rank,
        )
        h_full = world.register_handler(full_handler)
        h_new = world.register_handler(new_handler)

    host_start = time.perf_counter()
    world.begin_phase(phase_name)
    if style == "columnar":
        overhead_full = legacy_push_payload_overhead(h_full.handler_id)
        overhead_new = legacy_push_payload_overhead(h_new.handler_id)
        for ctx in world.ranks:
            # Cooperative cancellation checkpoint (see engine/push.py).
            world.check_deadline()
            drive_columnar_delta(
                ctx, dodgr, delta, h_full, h_new, overhead_full, overhead_new
            )
    else:
        new_sources = new_source_vertices(delta)
        for ctx in world.ranks:
            world.check_deadline()
            drive_legacy_delta(ctx, dodgr, delta, h_full, h_new, new_sources)
    world.barrier()
    host_seconds = time.perf_counter() - host_start
    # Per-batch closures capture the rebuilt DODGr and the delta; release
    # their registry slots (ids stay allocated, so later accounted message
    # sizes are unchanged) or a long stream pins every rebuild forever.
    world.registry.release(h_full)
    world.registry.release(h_new)

    simulated = world.simulated_time(phases=[phase_name])
    return SurveyReport.from_world_stats(
        algorithm="incremental_push",
        graph_name=graph_name or dodgr.name,
        world_stats=world.stats,
        simulated=simulated,
        phases=[phase_name],
        host_seconds=host_seconds,
    )


# ---------------------------------------------------------------------------
# Streaming driver: batches in, windowed reducer results out
# ---------------------------------------------------------------------------


class StreamingStep:
    """Result of ingesting one edge batch through a :class:`StreamingSurvey`.

    ``snapshot`` is the batch's own reducer output (the *panel*),
    ``window`` the merge of the panels currently inside the sliding window,
    and ``cumulative`` the merge of every panel since the stream started —
    which equals a full recompute's reducer output at this step for
    role-order-invariant reducers (see the module docstring).
    """

    __slots__ = (
        "batch_index",
        "new_edges",
        "report",
        "snapshot",
        "window",
        "cumulative",
        "retired",
        "host_seconds",
    )

    def __init__(
        self,
        batch_index,
        new_edges,
        report,
        snapshot,
        window,
        cumulative,
        retired,
        host_seconds=0.0,
    ) -> None:
        self.batch_index = batch_index
        self.new_edges = new_edges
        self.report = report
        self.snapshot = snapshot
        self.window = window
        self.cumulative = cumulative
        #: the panel that left the window this step (None while it fills up)
        self.retired = retired
        #: wall-clock seconds of the whole step (merge + rebuild + delta survey)
        self.host_seconds = host_seconds


class StreamingSurvey:
    """Sliding-window streaming survey driver.

    Owns a live :class:`~repro.graph.distributed_graph.DistributedGraph`, a
    :class:`~repro.graph.delta.DeltaBuffer`, and a deque of per-batch reducer
    snapshots.  Each :meth:`ingest` call merges one edge batch, runs
    :func:`incremental_triangle_survey` with a *fresh* reducer from
    ``reducer_factory`` (so the batch's panel is isolated), snapshots it, and
    maintains the windowed and cumulative merges through the reducer class's
    ``snapshot``/``merge`` contract (see ``docs/reducers.md``).

    Parameters
    ----------
    world:
        The simulated cluster.
    reducer_factory:
        ``reducer_factory(world) -> reducer``; the reducer class must
        provide ``callback``, ``snapshot()`` and ``merge(snapshots)`` (all
        stock reducers do), plus optionally ``finalize()`` and
        ``callback_batch``.
    window_batches:
        Size of the sliding window in batches; ``None`` keeps every panel
        (the window equals the cumulative result).
    engine / kernel / callback_compute_units:
        Forwarded to :func:`incremental_triangle_survey`; ``engine`` may be
        a registered engine name or an
        :class:`~repro.core.engine.EngineConfig` (the one selector threaded
        through every layer).
    """

    def __init__(
        self,
        world,
        reducer_factory: Callable[[Any], Any],
        window_batches: Optional[int] = None,
        engine=None,
        kernel: str = "merge_path",
        callback_compute_units: int = DEFAULT_CALLBACK_COMPUTE_UNITS,
        partitioner=None,
        graph_name: Optional[str] = None,
    ) -> None:
        if window_batches is not None and window_batches < 1:
            raise ValueError("window_batches must be at least 1")
        self.world = world
        self.reducer_factory = reducer_factory
        self.window_batches = window_batches
        self.engine = engine
        self.kernel = kernel
        self.callback_compute_units = callback_compute_units
        self.graph = DistributedGraph(
            world, partitioner=partitioner, name=graph_name or "streaming"
        )
        self.delta_buffer = DeltaBuffer(world)
        self.dodgr: Optional[DODGraph] = None
        self._panels: Deque[Any] = deque()
        self._merge: Optional[Callable[[Any], Any]] = None
        self._cumulative: Any = None

    # ------------------------------------------------------------------
    def ingest(
        self,
        edges,
        vertex_meta: Optional[Dict[Any, Any]] = None,
    ) -> StreamingStep:
        """Merge one edge batch, survey its delta triangles, slide the window."""
        host_start = time.perf_counter()
        self.delta_buffer.stage_edges(edges)
        if vertex_meta:
            for vertex, meta in vertex_meta.items():
                self.delta_buffer.stage_vertex_meta(vertex, meta)
        applied = self.delta_buffer.apply(self.graph)
        superseded = self.dodgr
        self.dodgr = applied.dodgr
        if superseded is not None:
            # The rebuilt DODGr replaces the previous one wholesale; release
            # the old rebuild's handler slot and rank stores so a long
            # stream's memory stays O(graph), not O(graph x batches).
            superseded.release()
        reducer = self.reducer_factory(self.world)
        if self._merge is None:
            self._merge = type(reducer).merge
        report = incremental_triangle_survey(
            applied.dodgr,
            applied,
            reducer.callback,
            kernel=self.kernel,
            engine=self.engine,
            callback_compute_units=self.callback_compute_units,
            graph_name=f"{self.graph.name}@{applied.batch_index}",
        )
        if hasattr(reducer, "finalize"):
            reducer.finalize()
        panel = reducer.snapshot()
        self._panels.append(panel)
        retired = None
        if self.window_batches is not None and len(self._panels) > self.window_batches:
            retired = self._panels.popleft()
        self._cumulative = (
            panel
            if self._cumulative is None
            else self._merge([self._cumulative, panel])
        )
        # With no window bound the window IS the cumulative merge — reuse it
        # instead of re-merging every panel (O(K^2) over a K-batch stream).
        window = (
            self._cumulative
            if self.window_batches is None
            else self._merge(list(self._panels))
        )
        return StreamingStep(
            batch_index=applied.batch_index,
            new_edges=applied.num_edges(),
            report=report,
            snapshot=panel,
            window=window,
            cumulative=self._cumulative,
            retired=retired,
            host_seconds=time.perf_counter() - host_start,
        )

    # ------------------------------------------------------------------
    @property
    def batches_ingested(self) -> int:
        return self.delta_buffer.applied_batches

    def window_panels(self) -> List[Any]:
        """The reducer panels currently inside the window (oldest first)."""
        return list(self._panels)
