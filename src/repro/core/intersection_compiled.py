"""Compiled kernel tier: numba-jitted batch/row intersection loops.

The columnar tier (:mod:`repro.core.intersection`) vectorizes the batch and
row kernels as NumPy array pipelines; their comparison counts are *replayed*
through closed forms over searchsorted ranks.  This module provides the
third tier: the scalar reference loops themselves, written in the restricted
nopython subset of Python and wrapped with ``numba.njit`` when numba is
importable.  Because the compiled functions *are* the scalar merge loops,
their matches and ``comparisons`` totals equal the scalar kernels' by
construction — no replay formula to keep honest.

Import is always safe: without numba, :data:`NUMBA_AVAILABLE` is False and
the loop functions stay plain Python.  :mod:`repro.core.intersection` only
registers the ``compiled`` tier in its tier tables when numba is present, so
a numba-less install transparently resolves ``kernel_tier="compiled"`` down
the declared chain (``compiled -> columnar -> scalar``); the pure-Python
loops remain directly callable either way, which is what lets the cross-tier
property suite pin the contract even on machines without the wheel.

The kernels receive and return exactly what the columnar tier does
(:class:`~repro.core.intersection.BatchIntersectionResult` /
:class:`~repro.core.intersection.RowBatchResult`), so the engine drivers are
tier-agnostic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as _np

from .intersection import (
    BatchIntersectionResult,
    RowAdjacency,
    RowBatchResult,
    _check_offsets,
)

try:  # The jit is optional; the loops below run unjitted without it.
    import numba as _numba
except ImportError:
    _numba = None

__all__ = [
    "NUMBA_AVAILABLE",
    "merge_path_batch_compiled",
    "binary_search_batch_compiled",
    "hash_batch_compiled",
    "merge_path_rows_compiled",
    "binary_search_rows_compiled",
    "hash_rows_compiled",
    "COMPILED_BATCH_KERNELS",
    "COMPILED_ROW_KERNELS",
]

#: True when numba imported and the loops below are jitted.
NUMBA_AVAILABLE = _numba is not None


# ---------------------------------------------------------------------------
# nopython loop bodies (jitted when numba is available)
# ---------------------------------------------------------------------------
#
# Every loop writes matches into caller-preallocated int64 output arrays
# (at most one match per candidate, so ``len(cand)`` slots always suffice)
# and returns ``(match_count, comparisons)``.  Comparison counting follows
# the scalar kernels of intersection.py line for line.


def _merge_batch_loop(cand, offs, adj, out_seg, out_cand, out_adj):
    m = 0
    comparisons = 0
    n_adj = adj.shape[0]
    for seg in range(offs.shape[0] - 1):
        i = offs[seg]
        hi = offs[seg + 1]
        j = 0
        while i < hi and j < n_adj:
            comparisons += 1
            ck = cand[i]
            ak = adj[j]
            if ck == ak:
                out_seg[m] = seg
                out_cand[m] = i - offs[seg]
                out_adj[m] = j
                m += 1
                i += 1
                j += 1
            elif ck < ak:
                i += 1
            else:
                j += 1
    return m, comparisons


def _binary_batch_loop(cand, offs, adj, out_seg, out_cand, out_adj):
    m = 0
    comparisons = 0
    n_adj = adj.shape[0]
    for seg in range(offs.shape[0] - 1):
        for i in range(offs[seg], offs[seg + 1]):
            ck = cand[i]
            lo = 0
            hi = n_adj
            while lo < hi:
                comparisons += 1
                mid = (lo + hi) // 2
                if adj[mid] < ck:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < n_adj:
                comparisons += 1
                if adj[lo] == ck:
                    out_seg[m] = seg
                    out_cand[m] = i - offs[seg]
                    out_adj[m] = lo
                    m += 1
    return m, comparisons


def _hash_batch_loop(cand, offs, adj, out_seg, out_cand, out_adj):
    # Matches via the merge walk (the inputs are sorted and duplicate-free,
    # so the matched set — and its ascending order — is identical to the
    # hash probe's); comparisons follow the scalar hash model: one table
    # build per segment over the shared adjacency, one probe per candidate.
    m = 0
    n_adj = adj.shape[0]
    n_seg = offs.shape[0] - 1
    for seg in range(n_seg):
        i = offs[seg]
        hi = offs[seg + 1]
        j = 0
        while i < hi and j < n_adj:
            ck = cand[i]
            ak = adj[j]
            if ck == ak:
                out_seg[m] = seg
                out_cand[m] = i - offs[seg]
                out_adj[m] = j
                m += 1
                i += 1
                j += 1
            elif ck < ak:
                i += 1
            else:
                j += 1
    comparisons = n_seg * n_adj + cand.shape[0]
    return m, comparisons


def _merge_rows_loop(cand, offs, seg_rows, keys, indptr, out_seg, out_cand, out_adj):
    m = 0
    comparisons = 0
    for seg in range(offs.shape[0] - 1):
        i = offs[seg]
        hi = offs[seg + 1]
        row = seg_rows[seg]
        j = indptr[row]
        jhi = indptr[row + 1]
        while i < hi and j < jhi:
            comparisons += 1
            ck = cand[i]
            ak = keys[j]
            if ck == ak:
                out_seg[m] = seg
                out_cand[m] = i
                out_adj[m] = j
                m += 1
                i += 1
                j += 1
            elif ck < ak:
                i += 1
            else:
                j += 1
    return m, comparisons


def _binary_rows_loop(cand, offs, seg_rows, keys, indptr, out_seg, out_cand, out_adj):
    m = 0
    comparisons = 0
    for seg in range(offs.shape[0] - 1):
        row = seg_rows[seg]
        adj_lo = indptr[row]
        n_row = indptr[row + 1] - adj_lo
        for i in range(offs[seg], offs[seg + 1]):
            ck = cand[i]
            lo = 0
            hi = n_row
            while lo < hi:
                comparisons += 1
                mid = (lo + hi) // 2
                if keys[adj_lo + mid] < ck:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < n_row:
                comparisons += 1
                if keys[adj_lo + lo] == ck:
                    out_seg[m] = seg
                    out_cand[m] = i
                    out_adj[m] = adj_lo + lo
                    m += 1
    return m, comparisons


def _hash_rows_loop(cand, offs, seg_rows, keys, indptr, out_seg, out_cand, out_adj):
    m = 0
    comparisons = cand.shape[0]
    for seg in range(offs.shape[0] - 1):
        i = offs[seg]
        hi = offs[seg + 1]
        row = seg_rows[seg]
        j = indptr[row]
        jhi = indptr[row + 1]
        comparisons += jhi - j
        while i < hi and j < jhi:
            ck = cand[i]
            ak = keys[j]
            if ck == ak:
                out_seg[m] = seg
                out_cand[m] = i
                out_adj[m] = j
                m += 1
                i += 1
                j += 1
            elif ck < ak:
                i += 1
            else:
                j += 1
    return m, comparisons


if NUMBA_AVAILABLE:  # pragma: no cover - requires a numba install
    _jit = _numba.njit(cache=True, nogil=True)
    _merge_batch_loop = _jit(_merge_batch_loop)
    _binary_batch_loop = _jit(_binary_batch_loop)
    _hash_batch_loop = _jit(_hash_batch_loop)
    _merge_rows_loop = _jit(_merge_rows_loop)
    _binary_rows_loop = _jit(_binary_rows_loop)
    _hash_rows_loop = _jit(_hash_rows_loop)


# ---------------------------------------------------------------------------
# Tier wrappers: columnar-tier signatures around the loops
# ---------------------------------------------------------------------------


def _as_i64(values) -> "_np.ndarray":
    # np.asarray strips ndarray subclasses (memmap columns of an
    # out-of-core CSR become plain views), which is what the jit wants.
    return _np.asarray(values, dtype=_np.int64)


def _run_batch(loop, candidate_keys, offsets, adjacency_keys) -> BatchIntersectionResult:
    cand = _as_i64(candidate_keys)
    offs = _as_i64(offsets)
    adj = _as_i64(adjacency_keys)
    _check_offsets(cand, offs)
    out_seg = _np.empty(cand.size, dtype=_np.int64)
    out_cand = _np.empty(cand.size, dtype=_np.int64)
    out_adj = _np.empty(cand.size, dtype=_np.int64)
    m, comparisons = loop(cand, offs, adj, out_seg, out_cand, out_adj)
    matches = list(
        zip(out_seg[:m].tolist(), out_cand[:m].tolist(), out_adj[:m].tolist())
    )
    return BatchIntersectionResult(matches, int(comparisons))


def _run_rows(
    loop, candidate_keys, offsets, seg_rows, adjacency: RowAdjacency
) -> RowBatchResult:
    cand = _as_i64(candidate_keys)
    offs = _as_i64(offsets)
    rows = _as_i64(seg_rows)
    _check_offsets(cand, offs)
    keys = _as_i64(adjacency.keys)
    indptr = _as_i64(adjacency.indptr)
    out_seg = _np.empty(cand.size, dtype=_np.int64)
    out_cand = _np.empty(cand.size, dtype=_np.int64)
    out_adj = _np.empty(cand.size, dtype=_np.int64)
    m, comparisons = loop(cand, offs, rows, keys, indptr, out_seg, out_cand, out_adj)
    return RowBatchResult(out_seg[:m], out_cand[:m], out_adj[:m], int(comparisons))


def merge_path_batch_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Compiled-tier :func:`~repro.core.intersection.merge_path_batch`."""
    return _run_batch(_merge_batch_loop, candidate_keys, offsets, adjacency_keys)


def binary_search_batch_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Compiled-tier :func:`~repro.core.intersection.binary_search_batch`."""
    return _run_batch(_binary_batch_loop, candidate_keys, offsets, adjacency_keys)


def hash_batch_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    adjacency_keys: Sequence[int],
) -> BatchIntersectionResult:
    """Compiled-tier :func:`~repro.core.intersection.hash_batch`."""
    return _run_batch(_hash_batch_loop, candidate_keys, offsets, adjacency_keys)


def merge_path_rows_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Compiled-tier :func:`~repro.core.intersection.merge_path_rows`."""
    return _run_rows(_merge_rows_loop, candidate_keys, offsets, seg_rows, adjacency)


def binary_search_rows_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Compiled-tier :func:`~repro.core.intersection.binary_search_rows`."""
    return _run_rows(_binary_rows_loop, candidate_keys, offsets, seg_rows, adjacency)


def hash_rows_compiled(
    candidate_keys: Sequence[int],
    offsets: Sequence[int],
    seg_rows: Sequence[int],
    adjacency: RowAdjacency,
) -> RowBatchResult:
    """Compiled-tier :func:`~repro.core.intersection.hash_rows`."""
    return _run_rows(_hash_rows_loop, candidate_keys, offsets, seg_rows, adjacency)


#: Compiled-tier kernels, keyed like INTERSECTION_KERNELS.  Registered into
#: the tier tables by intersection.py only when numba is present; always
#: importable (and contract-tested) as plain Python.
COMPILED_BATCH_KERNELS = {
    "merge_path": merge_path_batch_compiled,
    "binary_search": binary_search_batch_compiled,
    "hash": hash_batch_compiled,
}

COMPILED_ROW_KERNELS = {
    "merge_path": merge_path_rows_compiled,
    "binary_search": binary_search_rows_compiled,
    "hash": hash_rows_compiled,
}
