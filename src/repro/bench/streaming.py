"""Streaming workload helpers: batch schedules and the recompute baseline.

The streaming benchmark (``benchmarks/bench_streaming_survey.py``) replays an
edge stream two ways — through the incremental subsystem
(:class:`~repro.core.incremental.StreamingSurvey`) and as a from-scratch
recompute at every step — and compares results (bit-identical) and host time
(the speedup gate).  This module holds the pieces both the benchmark and the
examples share: deterministic schedule construction and the timed
full-recompute baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import EngineSelector, default_engine
from ..core.survey import triangle_survey_push
from ..graph.distributed_graph import DistributedGraph
from ..graph.dodgr import DODGraph

__all__ = ["StreamingSchedule", "make_streaming_schedule", "FullRecompute", "full_recompute_survey"]


@dataclass
class StreamingSchedule:
    """A deterministic split of an edge list into a base load plus deltas."""

    #: edges ingested as the first (bulk) batch
    base: List[Tuple[Any, Any, Any]]
    #: subsequent delta batches, in arrival order
    batches: List[List[Tuple[Any, Any, Any]]]

    def num_edges(self) -> int:
        return len(self.base) + sum(len(batch) for batch in self.batches)

    def delta_fraction(self) -> float:
        """Largest delta batch as a fraction of the total edge count."""
        total = self.num_edges()
        if not self.batches or total == 0:
            return 0.0
        return max(len(batch) for batch in self.batches) / total


def make_streaming_schedule(
    edges: Sequence[Tuple[Any, Any, Any]],
    num_batches: int = 3,
    delta_fraction: float = 0.01,
    seed: int = 0,
    sort_key: Optional[Callable[[Tuple[Any, Any, Any]], Any]] = None,
) -> StreamingSchedule:
    """Split ``edges`` into a base load plus ``num_batches`` delta batches.

    By default the edges are shuffled with a seeded NumPy generator (a
    uniform random arrival model); pass ``sort_key`` (e.g. the edge
    timestamp) to replay in data order instead.  Each delta batch holds
    ``delta_fraction`` of the total edge count (the last batch takes any
    rounding remainder), the base batch the rest.
    """
    if not 0.0 < delta_fraction * num_batches < 1.0:
        raise ValueError("delta batches must leave room for a non-empty base")
    records = list(edges)
    if sort_key is not None:
        records.sort(key=sort_key)
    else:
        rng = np.random.default_rng(seed)
        records = [records[i] for i in rng.permutation(len(records))]
    total = len(records)
    per_batch = max(1, int(total * delta_fraction))
    base_end = total - per_batch * num_batches
    if base_end <= 0:
        # The 1-record floor kicked in on a tiny edge list: honouring
        # delta_fraction is impossible without an empty base.
        raise ValueError(
            f"{total} edges cannot fill {num_batches} delta batches of "
            f"{per_batch} records plus a non-empty base"
        )
    batches = [
        records[base_end + k * per_batch : base_end + (k + 1) * per_batch]
        for k in range(num_batches - 1)
    ]
    batches.append(records[base_end + (num_batches - 1) * per_batch :])
    return StreamingSchedule(base=records[:base_end], batches=batches)


@dataclass
class FullRecompute:
    """Result and timing of one from-scratch survey over the live graph."""

    #: full-survey telemetry (all triangles of the current graph)
    report: Any
    #: the reducer's :meth:`result` over the whole graph
    result: Any
    #: wall-clock seconds of rebuild + survey + reducer finalize
    host_seconds: float


def full_recompute_survey(
    graph: DistributedGraph,
    reducer_factory: Callable[[Any], Any],
    engine: EngineSelector = "columnar",
    kernel: str = "merge_path",
) -> FullRecompute:
    """The non-streaming baseline: rebuild the DODGr and survey everything.

    This is what a deployment without the incremental subsystem does after
    every batch: one ``DODGraph.build(mode="bulk")`` over the accumulated
    graph, a full push survey with a fresh reducer, and the reducer's cache
    flush.  Wall-clock covers all three (matching what
    :attr:`~repro.core.incremental.StreamingStep.host_seconds` covers on the
    incremental side).
    """
    world = graph.world
    host_start = time.perf_counter()
    dodgr = DODGraph.build(graph, mode="bulk")
    reducer = reducer_factory(world)
    engine = default_engine(engine, "columnar")
    report = triangle_survey_push(dodgr, reducer.callback, kernel=kernel, engine=engine)
    if hasattr(reducer, "finalize"):
        reducer.finalize()
    result = reducer.result()
    return FullRecompute(
        report=report,
        result=result,
        host_seconds=time.perf_counter() - host_start,
    )
