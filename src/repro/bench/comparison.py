"""Cross-system comparison driver (Table 2 of the paper).

Runs TriPoll (both variants) and the three reimplemented baselines on the
same distributed graph at a fixed node count and collects their telemetry
for a side-by-side table.  The paper's Table 2 uses 1024 cores (64 nodes)
except where a system could not run; the scaled-down default here is a
16-rank world (a perfect square, as the Tom & Karypis algorithm requires).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines.pearce import pearce_triangle_count
from ..baselines.tom2d import is_perfect_square, tom2d_triangle_count
from ..baselines.tric import tric_triangle_count
from ..core.push_pull import triangle_survey_push_pull
from ..core.results import SurveyReport
from ..core.survey import triangle_survey_push
from ..graph.dodgr import DODGraph
from ..graph.generators import GeneratedGraph
from ..runtime.world import World

__all__ = ["SystemResult", "ComparisonResult", "compare_systems", "DEFAULT_SYSTEMS"]

#: Systems included in the comparison, in presentation order.
DEFAULT_SYSTEMS = ("tripoll_push_pull", "tripoll_push", "pearce", "tom2d", "tric")


@dataclass
class SystemResult:
    system: str
    report: Optional[SurveyReport]
    host_seconds: float
    #: reason the system did not produce a result (None when it ran)
    skipped: Optional[str] = None

    @property
    def triangles(self) -> Optional[int]:
        return self.report.triangles if self.report is not None else None

    @property
    def simulated_seconds(self) -> Optional[float]:
        return self.report.simulated_seconds if self.report is not None else None


@dataclass
class ComparisonResult:
    dataset: str
    nodes: int
    systems: List[SystemResult] = field(default_factory=list)

    def by_system(self) -> Dict[str, SystemResult]:
        return {entry.system: entry for entry in self.systems}

    def agreeing_triangle_count(self) -> Optional[int]:
        counts = {entry.triangles for entry in self.systems if entry.triangles is not None}
        return counts.pop() if len(counts) == 1 else None

    def speedup_over(self, system: str, baseline: str) -> Optional[float]:
        entries = self.by_system()
        a = entries.get(system)
        b = entries.get(baseline)
        if a is None or b is None or a.simulated_seconds is None or b.simulated_seconds is None:
            return None
        if a.simulated_seconds == 0:
            return None
        return b.simulated_seconds / a.simulated_seconds


def compare_systems(
    dataset: GeneratedGraph,
    nodes: int = 16,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
) -> ComparisonResult:
    """Run the requested systems on ``dataset`` distributed over ``nodes`` ranks."""
    result = ComparisonResult(dataset=dataset.name, nodes=nodes)
    for system in systems:
        world = World(nodes)
        graph = dataset.to_distributed(world)
        host_start = time.perf_counter()
        report: Optional[SurveyReport] = None
        skipped: Optional[str] = None
        try:
            if system == "tripoll_push_pull":
                dodgr = DODGraph.build(graph, mode="bulk")
                report = triangle_survey_push_pull(dodgr, graph_name=dataset.name)
            elif system == "tripoll_push":
                dodgr = DODGraph.build(graph, mode="bulk")
                report = triangle_survey_push(dodgr, graph_name=dataset.name)
            elif system == "pearce":
                report = pearce_triangle_count(graph, graph_name=dataset.name)
            elif system == "tom2d":
                if not is_perfect_square(nodes):
                    skipped = f"requires a perfect-square node count (got {nodes})"
                else:
                    report = tom2d_triangle_count(graph, graph_name=dataset.name)
            elif system == "tric":
                report = tric_triangle_count(graph, graph_name=dataset.name)
            else:
                raise ValueError(f"unknown system {system!r}")
        except ValueError as exc:
            skipped = str(exc)
        host_seconds = time.perf_counter() - host_start
        result.systems.append(
            SystemResult(system=system, report=report, host_seconds=host_seconds, skipped=skipped)
        )
    return result
