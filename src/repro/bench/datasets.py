"""Stand-in dataset registry for the paper's evaluation graphs (Table 1).

The paper's datasets range from 69 million to 224 billion edges and cannot be
downloaded (or held in memory) here, so each one is represented by a
scaled-down synthetic stand-in whose *topological character* — degree skew,
clustering, community structure, temporal behaviour — matches what the
corresponding experiment depends on.  DESIGN.md records the mapping; the
``paper_row`` field of each entry carries the published Table 1 numbers so
the Table 1 benchmark can print paper-vs-measured side by side.

Sizes are chosen so that a single triangle survey over any stand-in finishes
in a couple of seconds on a laptop while still generating enough wedges
(tens to hundreds of thousands) for the communication effects the paper
studies to be visible.  Set the environment variable ``REPRO_BENCH_SCALE``
to a float to grow or shrink every stand-in together.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional

from ..graph.edge_list import canonical_pair
from ..graph.generators import (
    GeneratedGraph,
    chung_lu_power_law,
    clustered_web_graph,
    community_host_graph,
    fqdn_web_graph,
    reddit_like_temporal_graph,
    rmat,
)
from ..graph.metadata import edge_timestamp

__all__ = ["StandInDataset", "DATASETS", "load_dataset", "dataset_names", "bench_scale"]


def bench_scale() -> float:
    """Global size multiplier taken from ``REPRO_BENCH_SCALE`` (default 1.0)."""
    try:
        value = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return max(0.1, value)


@dataclass(frozen=True)
class StandInDataset:
    """One stand-in dataset and its provenance."""

    #: registry key
    name: str
    #: dataset in the paper this stands in for
    paper_name: str
    #: Table 1 row from the paper (|V|, |E|, |T|, d_max, d+_max), as published
    paper_row: Dict[str, Any]
    #: one-line description of why this generator matches the original
    character: str
    #: generator taking the global scale factor and returning the graph
    build: Callable[[float], GeneratedGraph] = field(repr=False)


def _simplified_reddit(scale: float) -> GeneratedGraph:
    """Reddit-like multigraph reduced to the chronologically-first edge per pair."""
    raw = reddit_like_temporal_graph(
        num_authors=int(3500 * scale),
        num_comments=int(52000 * scale),
        seed=2005,
        name="reddit-like",
    )
    first: Dict[Any, Any] = {}
    for u, v, meta in raw.edges:
        key = canonical_pair(u, v)
        if key not in first or edge_timestamp(meta) < edge_timestamp(first[key]):
            first[key] = meta
    edges = [(u, v, meta) for (u, v), meta in first.items()]
    return GeneratedGraph(
        name="reddit-like",
        edges=edges,
        vertex_meta=raw.vertex_meta,
        params=dict(raw.params, simplified="earliest"),
    )


DATASETS: Dict[str, StandInDataset] = {
    "livejournal-like": StandInDataset(
        name="livejournal-like",
        paper_name="LiveJournal",
        paper_row={"|V|": 4.85e6, "|E|": 69.0e6, "|T|": 286e6, "d_max": 20333, "d+_max": 686},
        character="medium social network: power-law degrees, moderate clustering",
        build=lambda scale: chung_lu_power_law(
            int(6000 * scale), average_degree=8, exponent=2.4, seed=11, name="livejournal-like"
        ),
    ),
    "friendster-like": StandInDataset(
        name="friendster-like",
        paper_name="Friendster",
        paper_row={"|V|": 66e6, "|E|": 3.6e9, "|T|": 4.2e9, "d_max": 5214, "d+_max": 868},
        character="huge social network with comparatively low triangle density; "
        "the dataset where Push-Pull gains nothing",
        build=lambda scale: chung_lu_power_law(
            int(12000 * scale), average_degree=6, exponent=2.7, seed=12, name="friendster-like"
        ),
    ),
    "twitter-like": StandInDataset(
        name="twitter-like",
        paper_name="Twitter",
        paper_row={"|V|": 42e6, "|E|": 2.4e9, "|T|": 34.8e9, "d_max": 3.0e6, "d+_max": 4102},
        character="follower graph: extreme degree skew, celebrity hubs",
        build=lambda scale: chung_lu_power_law(
            int(8000 * scale), average_degree=7, exponent=2.1, seed=13, name="twitter-like"
        ),
    ),
    "uk2007-like": StandInDataset(
        name="uk2007-like",
        paper_name="uk-2007-05",
        paper_row={"|V|": 106e6, "|E|": 6.6e9, "|T|": 286.7e9, "d_max": 975e3, "d+_max": 5704},
        character="page-level web crawl: high clustering from site-internal links",
        build=lambda scale: clustered_web_graph(
            int(5000 * scale), attachment_edges=5, triad_probability=0.8, seed=14,
            name="uk2007-like",
        ),
    ),
    "hostgraph-like": StandInDataset(
        name="hostgraph-like",
        paper_name="web-cc12-hostgraph",
        paper_row={"|V|": 101e6, "|E|": 3.8e9, "|T|": 415e9, "d_max": 3.0e6, "d+_max": 10654},
        character="host-level web graph: dense organisational communities; the "
        "dataset where Push-Pull cuts communication by an order of magnitude",
        build=lambda scale: community_host_graph(
            int(2500 * scale), community_size=220, intra_probability=0.13,
            cross_links_per_vertex=1.0, seed=15, name="hostgraph-like",
        ),
    ),
    "wdc2012-like": StandInDataset(
        name="wdc2012-like",
        paper_name="Web Data Commons 2012",
        paper_row={"|V|": 3.56e9, "|E|": 224.5e9, "|T|": 9.65e12, "d_max": 95e6, "d+_max": 10683},
        character="largest web crawl in the paper (224B edges): extreme hubs plus "
        "dense communities",
        build=lambda scale: community_host_graph(
            int(4000 * scale), community_size=150, intra_probability=0.12,
            cross_links_per_vertex=1.5, num_hubs=10, hub_fanout=0.1, seed=16,
            name="wdc2012-like",
        ),
    ),
    "reddit-like": StandInDataset(
        name="reddit-like",
        paper_name="Reddit",
        paper_row={"|V|": 835e6, "|E|": 9.4e9, "|T|": 88.1e9, "d_max": 1.70e6, "d+_max": 3301},
        character="temporal comment graph between authors; edges carry timestamps, "
        "multigraph simplified to the chronologically-first comment per pair",
        build=_simplified_reddit,
    ),
    "fqdn-web": StandInDataset(
        name="fqdn-web",
        paper_name="Web Data Commons 2012 (FQDN-decorated)",
        paper_row={"|V|": 3.56e9, "|E|": 224.5e9, "|T|": 9.65e12, "d_max": 95e6, "d+_max": 10683},
        character="page graph whose vertices carry FQDN strings; planted brand / "
        "competitor / education communities for the Fig. 8 survey",
        build=lambda scale: fqdn_web_graph(int(3000 * scale), seed=18, name="fqdn-web"),
    ),
    "rmat-weak": StandInDataset(
        name="rmat-weak",
        paper_name="R-MAT (weak scaling)",
        paper_row={"|V|": 2 ** 24, "|E|": 2 ** 28, "|T|": None, "d_max": None, "d+_max": None},
        character="Graph500-style R-MAT used for the weak-scaling studies",
        build=lambda scale: rmat(12, edge_factor=8, seed=19, name="rmat-weak"),
    ),
}


def dataset_names() -> List[str]:
    return list(DATASETS.keys())


@lru_cache(maxsize=None)
def _cached_build(name: str, scale: float) -> GeneratedGraph:
    return DATASETS[name].build(scale)


def load_dataset(name: str, scale: Optional[float] = None) -> GeneratedGraph:
    """Generate (and cache) the stand-in dataset ``name``."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return _cached_build(name, scale if scale is not None else bench_scale())
