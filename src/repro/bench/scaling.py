"""Strong- and weak-scaling drivers (Figs. 4, 5, 7, 9 of the paper).

A "compute node" in these drivers is one virtual rank of the simulated world
(the paper runs 24 MPI ranks per physical node; the simulation collapses that
distinction — scaling behaviour is governed by the number of partitions, not
by what they are called).  Node counts are scaled down from the paper's
2-256 range to keep laptop runtimes reasonable; the *relative* behaviour
(speedups, stagnation at the largest counts, shrinking pull opportunities)
is what the benchmarks compare against the published trends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.engine import EngineSelector
from ..core.push_pull import triangle_survey_push_pull
from ..core.results import SurveyReport
from ..core.survey import triangle_survey_push
from ..core.wedges import work_rate
from ..graph.distributed_graph import DistributedGraph
from ..graph.dodgr import DODGraph
from ..graph.generators import GeneratedGraph, rmat
from ..runtime.world import World

__all__ = [
    "ScalingPoint",
    "ScalingResult",
    "run_survey_at_scale",
    "strong_scaling",
    "weak_scaling_rmat",
]

#: Factory for survey callbacks; receives the world and the distributed graph
#: and returns (callback, finalize) — finalize may be None.
CallbackFactory = Callable[[World, DistributedGraph], Any]


@dataclass
class ScalingPoint:
    """One (node count, survey run) measurement."""

    nodes: int
    report: SurveyReport
    wedges: int
    #: seconds of real time the simulation took (not simulated time)
    host_seconds: float

    @property
    def simulated_seconds(self) -> float:
        return self.report.simulated_seconds

    @property
    def work_rate(self) -> float:
        """Wedges processed per node per simulated second (Fig. 5 metric)."""
        return work_rate(self.wedges, self.nodes, self.simulated_seconds)


@dataclass
class ScalingResult:
    """A scaling sweep over node counts for one dataset + algorithm."""

    dataset: str
    algorithm: str
    points: List[ScalingPoint] = field(default_factory=list)

    def speedups(self) -> List[float]:
        """Speedup of each point relative to the smallest node count."""
        if not self.points:
            return []
        base = self.points[0].simulated_seconds
        return [base / p.simulated_seconds if p.simulated_seconds > 0 else 0.0 for p in self.points]

    def node_counts(self) -> List[int]:
        return [p.nodes for p in self.points]

    def phase_breakdowns(self) -> List[Dict[str, float]]:
        return [p.report.phase_breakdown() for p in self.points]

    def communication_bytes(self) -> List[int]:
        return [p.report.communication_bytes for p in self.points]

    def pulls_per_rank(self) -> List[float]:
        return [p.report.pulls_per_rank for p in self.points]

    def work_rates(self) -> List[float]:
        return [p.work_rate for p in self.points]


def run_survey_at_scale(
    dataset: GeneratedGraph,
    nodes: int,
    algorithm: str = "push_pull",
    callback_factory: Optional[CallbackFactory] = None,
    decorate: Optional[Callable[[DistributedGraph], DistributedGraph]] = None,
    engine: Optional[EngineSelector] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ScalingPoint:
    """Distribute ``dataset`` over ``nodes`` ranks and run one survey.

    ``engine`` selects the survey execution engine: any registered engine
    name (``legacy`` — the default, ``batched``, ``columnar``,
    ``columnar-pull``) or an :class:`~repro.core.engine.EngineConfig`;
    every engine produces identical reports, so the paper figures can be
    regenerated on any of them.  ``backend`` picks the execution backend
    the same way (``simulated`` — the default, or ``process`` with
    ``workers`` forked rank-shard workers); backends, too, produce
    identical reports, differing only in host wall-clock.
    """
    world = World(nodes)
    graph = dataset.to_distributed(world)
    if decorate is not None:
        graph = decorate(graph)
    dodgr = DODGraph.build(graph, mode="bulk")
    wedges = dodgr.wedge_count()

    callback = None
    finalize = None
    if callback_factory is not None:
        produced = callback_factory(world, graph)
        if isinstance(produced, tuple):
            callback, finalize = produced
        else:
            callback = produced

    host_start = time.perf_counter()
    if algorithm == "push":
        report = triangle_survey_push(
            dodgr, callback, graph_name=dataset.name, engine=engine,
            backend=backend, workers=workers,
        )
    elif algorithm == "push_pull":
        report = triangle_survey_push_pull(
            dodgr, callback, graph_name=dataset.name, engine=engine,
            backend=backend, workers=workers,
        )
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    if finalize is not None:
        finalize()
    host_seconds = time.perf_counter() - host_start
    return ScalingPoint(nodes=nodes, report=report, wedges=wedges, host_seconds=host_seconds)


def strong_scaling(
    dataset: GeneratedGraph,
    node_counts: Sequence[int],
    algorithm: str = "push_pull",
    callback_factory: Optional[CallbackFactory] = None,
    decorate: Optional[Callable[[DistributedGraph], DistributedGraph]] = None,
    engine: Optional[EngineSelector] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ScalingResult:
    """Fixed dataset, growing node counts (Figs. 4 and 7, Tables 3 and 4)."""
    result = ScalingResult(dataset=dataset.name, algorithm=algorithm)
    for nodes in node_counts:
        result.points.append(
            run_survey_at_scale(
                dataset,
                nodes,
                algorithm=algorithm,
                callback_factory=callback_factory,
                decorate=decorate,
                engine=engine,
                backend=backend,
                workers=workers,
            )
        )
    return result


def weak_scaling_rmat(
    node_counts: Sequence[int],
    scale_per_node: int = 10,
    edge_factor: int = 8,
    algorithm: str = "push_pull",
    callback_factory: Optional[CallbackFactory] = None,
    decorate: Optional[Callable[[DistributedGraph], DistributedGraph]] = None,
    seed: int = 99,
    engine: Optional[EngineSelector] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ScalingResult:
    """R-MAT weak scaling: one R-MAT scale step per node-count doubling (Figs. 5/9).

    The paper uses a scale-24 R-MAT per node, from scale 24 on 1 node to
    scale 32 on 256 nodes; this driver keeps the same "scale grows with
    log2(nodes)" rule at a laptop-sized base scale.
    """
    result = ScalingResult(dataset=f"rmat_weak_s{scale_per_node}", algorithm=algorithm)
    for nodes in node_counts:
        scale = scale_per_node + max(0, (nodes - 1)).bit_length()
        graph = rmat(scale, edge_factor=edge_factor, seed=seed + scale, name=f"rmat_s{scale}")
        result.points.append(
            run_survey_at_scale(
                graph,
                nodes,
                algorithm=algorithm,
                callback_factory=callback_factory,
                decorate=decorate,
                engine=engine,
                backend=backend,
                workers=workers,
            )
        )
    return result
