"""Plain-text table and series formatting for the benchmark harness.

The paper reports results as tables (Tables 1-4) and figures (Figs. 4-9).
The benchmark scripts regenerate the same rows/series and print them with
these helpers, so ``pytest benchmarks/ --benchmark-only -s`` produces a
textual version of every artifact next to the timing numbers.
"""

from __future__ import annotations

import tracemalloc
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_kv",
    "format_series",
    "format_histogram",
    "format_matrix",
    "human_bytes",
    "human_count",
    "percentiles",
    "peak_rss_bytes",
    "AllocationTracker",
    "memory_snapshot",
]


def percentiles(
    values: Iterable[float],
    ps: Sequence[float] = (50, 90, 99),
) -> Dict[str, Optional[float]]:
    """Linear-interpolation percentiles of ``values`` keyed ``"p50"``-style.

    The estimator is the standard ``rank = (n - 1) * p / 100`` linear
    interpolation (NumPy's default), in pure Python so every benchmark can
    use it whether or not NumPy is installed.  Empty input yields ``None``
    for every requested percentile; a singleton yields that value.  Keys
    drop a trailing ``.0`` (``p99.9`` stays ``"p99.9"``).
    """
    data = sorted(float(v) for v in values)
    out: Dict[str, Optional[float]] = {}
    for p in ps:
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        key = f"p{int(p)}" if float(p) == int(p) else f"p{p}"
        if not data:
            out[key] = None
            continue
        rank = (len(data) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        out[key] = data[lo] + (data[hi] - data[lo]) * frac
    return out


def human_bytes(value: float) -> str:
    """Format a byte count with a binary-ish unit (B, KB, MB, GB)."""
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{value:,.0f} B"
        value /= 1024.0
    return f"{value:,.1f} TB"


def human_count(value: Optional[float]) -> str:
    """Format a count with K/M/B suffixes (Table 1 style)."""
    if value is None:
        return "-"
    for threshold, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return f"{int(value)}"


def _stringify(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = list(columns)
    body = [[_stringify(row.get(col)) for col in header] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Same row/column semantics as :func:`format_table` (column order defaults
    to first-seen key order), but pipe-delimited so the output drops
    straight into a ``.md`` artifact — the sweep harness's coverage map uses
    this for its human-readable half.  Cell text is escaped minimally
    (pipes only); a ``title`` becomes a bold caption line.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    header = list(columns)

    def cell(value: Any) -> str:
        return _stringify(value).replace("|", "\\|")

    lines: List[str] = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join(" --- " for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(col)) for col in header) + " |")
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, Any], title: Optional[str] = None) -> str:
    """Render a mapping as aligned ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if pairs:
        width = max(len(str(key)) for key in pairs)
        for key, value in pairs.items():
            lines.append(f"{str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    ys: Sequence[Any],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render a figure series as two aligned columns."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, columns=[x_label, y_label], title=title)


def format_histogram(
    histogram: Mapping[Any, int],
    key_label: str = "bucket",
    title: Optional[str] = None,
    max_bar: int = 40,
) -> str:
    """Render a histogram with proportional ASCII bars (log-style figures)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(histogram.values())
    keys = sorted(histogram.keys(), key=lambda k: (isinstance(k, str), k))
    key_width = max(len(str(k)) for k in keys)
    for key in keys:
        count = histogram[key]
        bar = "#" * max(1, int(max_bar * count / peak)) if count > 0 else ""
        lines.append(f"{str(key).ljust(key_width)}  {count:>10,d}  {bar}")
    return "\n".join(lines)


def format_matrix(
    labels: Sequence[str],
    grid: Sequence[Sequence[int]],
    title: Optional[str] = None,
    max_labels: int = 20,
) -> str:
    """Render a (possibly truncated) 2D count matrix (Fig. 8 heat map)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    shown = list(labels[:max_labels])
    if len(labels) > max_labels:
        lines.append(f"(showing first {max_labels} of {len(labels)} domains)")
    width = max((len(label) for label in shown), default=4)
    header = " " * (width + 1) + " ".join(f"{i:>6d}" for i in range(len(shown)))
    lines.append(header)
    for i, label in enumerate(shown):
        row = grid[i][: len(shown)]
        lines.append(f"{label.ljust(width)} " + " ".join(f"{value:>6d}" for value in row))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Peak-memory tracking (out-of-core gates, ISSUE 10)
# ---------------------------------------------------------------------------


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process so far, in bytes.

    ``resource.getrusage(RUSAGE_SELF).ru_maxrss`` — kilobytes on Linux,
    bytes on macOS — normalised to bytes.  A process-lifetime high-water
    mark: it never decreases, so benchmarks report it as context (how big
    did the process ever get) and gate *phase* allocations with
    :class:`AllocationTracker` instead.  Returns ``None`` on platforms
    without the ``resource`` module (Windows), so artifact emission can
    degrade gracefully.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(rss)
    return int(rss) * 1024


class AllocationTracker:
    """Python-allocation high-water mark over one measured region.

    ``tracemalloc``-based: unlike :func:`peak_rss_bytes` this *can* be reset
    between phases, which is what lets the out-of-core benchmark gate the
    survey phase's transient allocations against the configured budget after
    the (unavoidably resident) graph build.  Use as a context manager::

        with AllocationTracker() as tracker:
            run_survey(...)
        assert tracker.peak_bytes <= budget

    Nested/pre-existing tracing is respected: if ``tracemalloc`` was already
    running, the tracker only resets the peak counter and leaves tracing on
    at exit.
    """

    def __init__(self) -> None:
        self.peak_bytes: Optional[int] = None
        self._started_here = False

    def __enter__(self) -> "AllocationTracker":
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        else:
            tracemalloc.start()
            self._started_here = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _current, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = int(peak)
        if self._started_here:
            tracemalloc.stop()


def memory_snapshot() -> Dict[str, Optional[int]]:
    """The memory facts every benchmark artifact can carry.

    ``peak_rss_bytes`` is the process high-water mark;
    ``traced_current_bytes``/``traced_peak_bytes`` are present only while a
    :class:`AllocationTracker` (or other ``tracemalloc`` client) is tracing.
    """
    snapshot: Dict[str, Optional[int]] = {"peak_rss_bytes": peak_rss_bytes()}
    if tracemalloc.is_tracing():
        current, peak = tracemalloc.get_traced_memory()
        snapshot["traced_current_bytes"] = int(current)
        snapshot["traced_peak_bytes"] = int(peak)
    return snapshot
