"""Benchmark harness: stand-in datasets, scaling drivers, reporting."""

from .comparison import DEFAULT_SYSTEMS, ComparisonResult, SystemResult, compare_systems
from .datasets import DATASETS, StandInDataset, bench_scale, dataset_names, load_dataset
from .reporting import (
    format_histogram,
    format_markdown_table,
    format_kv,
    format_matrix,
    format_series,
    format_table,
    human_bytes,
    human_count,
    percentiles,
)
from .scaling import (
    ScalingPoint,
    ScalingResult,
    run_survey_at_scale,
    strong_scaling,
    weak_scaling_rmat,
)
from .streaming import (
    FullRecompute,
    StreamingSchedule,
    full_recompute_survey,
    make_streaming_schedule,
)

__all__ = [
    "DATASETS",
    "StandInDataset",
    "load_dataset",
    "dataset_names",
    "bench_scale",
    "ScalingPoint",
    "ScalingResult",
    "run_survey_at_scale",
    "strong_scaling",
    "weak_scaling_rmat",
    "StreamingSchedule",
    "make_streaming_schedule",
    "FullRecompute",
    "full_recompute_survey",
    "ComparisonResult",
    "SystemResult",
    "compare_systems",
    "DEFAULT_SYSTEMS",
    "format_table",
    "format_markdown_table",
    "format_kv",
    "format_series",
    "format_histogram",
    "format_matrix",
    "human_bytes",
    "human_count",
    "percentiles",
]
