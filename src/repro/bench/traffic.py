"""Synthetic query traffic for the survey service: workload + driver.

The service benchmark (``benchmarks/bench_query_traffic.py``) needs
deterministic overload: ingest batches interleaved with query bursts,
repeats to exercise the panel cache, tight deadlines to exercise the
degradation ladder, all under an armed chaos plan.  This module holds
the pieces the benchmark, the ``python -m repro.service`` CLI and the
service tests share: a seeded workload generator
(:func:`make_query_traffic`), a seeded graph stream with temporal +
label metadata (:func:`make_service_workload`) so every tracked analysis
has something to count, and the replay driver (:func:`run_query_traffic`)
that pumps the service the way a serving loop would.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..graph.generators import rmat
from ..graph.metadata import temporal_edge_meta
from ..service import SurveyAnswer, SurveyQuery, SurveyService
from .streaming import make_streaming_schedule

__all__ = [
    "TrafficEvent",
    "TrafficTrace",
    "TrafficResult",
    "make_service_workload",
    "make_query_traffic",
    "run_query_traffic",
]


@dataclass(frozen=True)
class TrafficEvent:
    """One step of the replay: an ingest batch or a query submission."""

    kind: str  # "ingest" | "query"
    batch: Optional[List[Tuple[Any, Any, Any]]] = None
    query: Optional[SurveyQuery] = None


@dataclass
class TrafficTrace:
    """A deterministic interleaving of ingest batches and query bursts."""

    events: List[TrafficEvent]
    num_batches: int
    num_queries: int
    #: queries that re-issue an earlier query verbatim (cache-hit drivers)
    num_repeats: int


@dataclass
class TrafficResult:
    """Everything the replay produced, for gates and artifacts."""

    answers: List[SurveyAnswer]
    latencies_s: List[float]
    wall_seconds: float
    ingested_batches: int

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for answer in self.answers:
            counts[answer.outcome] = counts.get(answer.outcome, 0) + 1
        return counts

    @property
    def queries_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.answers) / self.wall_seconds


def make_service_workload(
    scale: int = 7,
    edge_factor: int = 8,
    num_batches: int = 4,
    delta_fraction: float = 0.03,
    seed: int = 0,
    num_labels: int = 5,
) -> Tuple[List[List[Tuple[Any, Any, Any]]], Dict[Any, Any]]:
    """A seeded R-MAT edge stream decorated for every tracked analysis.

    Edges carry :func:`~repro.graph.metadata.temporal_edge_meta`
    timestamps + labels (feeding the closure and label analyses); the
    returned vertex metadata assigns each vertex a label from a small
    seeded alphabet.  Returns ``(batches, vertex_meta)`` where the first
    batch is the bulk base load.
    """
    generated = rmat(scale, edge_factor=edge_factor, seed=seed)
    rng = random.Random(seed ^ 0x5EED)
    edges = [
        (u, v, temporal_edge_meta(float(i), rng.randrange(num_labels)))
        for i, (u, v, _) in enumerate(generated.edges)
    ]
    schedule = make_streaming_schedule(
        edges,
        num_batches=num_batches - 1,
        delta_fraction=delta_fraction,
        seed=seed,
    )
    vertices = sorted({v for u, v, _ in edges} | {u for u, v, _ in edges})
    vertex_meta = {vertex: rng.randrange(num_labels) for vertex in vertices}
    return [schedule.base, *schedule.batches], vertex_meta


def make_query_traffic(
    num_batches: int,
    num_queries: int,
    seed: int = 0,
    analyses: Sequence[str] = ("triangle", "closure", "labels"),
    engines: Sequence[Optional[str]] = (None,),
    repeat_fraction: float = 0.5,
    window_fraction: float = 0.15,
    tight_deadline_fraction: float = 0.15,
    tight_deadline_s: float = 1e-4,
    batches: Optional[List[List[Tuple[Any, Any, Any]]]] = None,
) -> TrafficTrace:
    """Interleave ``num_batches`` ingests with ``num_queries`` queries.

    Queries arrive in bursts between ingests.  A ``repeat_fraction`` of
    them re-issue an earlier query verbatim (the cache-hit gate driver);
    a ``tight_deadline_fraction`` carry a deadline far below any real
    survey time (the degradation-ladder driver); a ``window_fraction``
    ask for sliding windows.  The first event is always an ingest (the
    service requires an epoch before it accepts queries).
    """
    rng = random.Random(seed)
    issued: List[SurveyQuery] = []
    num_repeats = 0
    queries: List[SurveyQuery] = []
    for _ in range(num_queries):
        if issued and rng.random() < repeat_fraction:
            queries.append(rng.choice(issued))
            num_repeats += 1
            continue
        window: Optional[int] = None
        if rng.random() < window_fraction:
            window = rng.randint(1, max(1, num_batches - 1))
        timeout: Optional[float] = None
        if rng.random() < tight_deadline_fraction:
            timeout = tight_deadline_s
        query = SurveyQuery(
            analysis=rng.choice(list(analyses)),
            engine=rng.choice(list(engines)),
            window=window,
            timeout_s=timeout,
        )
        issued.append(query)
        queries.append(query)

    if batches is None:
        batch_payloads: List[Optional[List[Tuple[Any, Any, Any]]]] = [
            None
        ] * num_batches
    else:
        if len(batches) != num_batches:
            raise ValueError(
                f"got {len(batches)} batches for num_batches={num_batches}"
            )
        batch_payloads = list(batches)

    # Deal the queries into num_batches bursts (sizes drawn from the rng
    # so some bursts exceed any bounded queue), one burst after each
    # ingest.
    events: List[TrafficEvent] = []
    remaining = list(queries)
    for index in range(num_batches):
        events.append(TrafficEvent(kind="ingest", batch=batch_payloads[index]))
        bursts_left = num_batches - index
        if bursts_left == 1:
            take = len(remaining)
        else:
            expected = len(remaining) // bursts_left
            take = min(len(remaining), rng.randint(0, max(1, expected * 2)))
        for query in remaining[:take]:
            events.append(TrafficEvent(kind="query", query=query))
        remaining = remaining[take:]
    return TrafficTrace(
        events=events,
        num_batches=num_batches,
        num_queries=num_queries,
        num_repeats=num_repeats,
    )


def run_query_traffic(
    service: SurveyService,
    trace: TrafficTrace,
    batches: Optional[List[List[Tuple[Any, Any, Any]]]] = None,
    vertex_meta: Optional[Dict[Any, Any]] = None,
) -> TrafficResult:
    """Replay ``trace`` against ``service`` the way a serving loop would.

    Query events submit without pumping (bursts pile up against admission
    control, exactly the overload the bounded queue is for); each ingest
    event first answers *half* the backlog and deliberately carries the
    other half across the epoch advance — those queries then execute
    after newer batches landed, which is the snapshot-isolation case the
    service's epoch pinning exists for.  A final drain answers the tail.
    Every submitted ticket ends answered: the driver asserts the
    service's no-hang contract.
    """
    batch_iter = iter(batches) if batches is not None else None
    tickets = []
    start = time.perf_counter()
    first_ingest = True
    for event in trace.events:
        if event.kind == "ingest":
            backlog = service.stats().queue_depth
            service.pump(max_queries=backlog // 2)
            payload = event.batch
            if payload is None:
                if batch_iter is None:
                    raise ValueError(
                        "trace has no inline batches; pass batches= to the driver"
                    )
                payload = next(batch_iter)
            service.ingest(payload, vertex_meta if first_ingest else None)
            first_ingest = False
        else:
            assert event.query is not None
            tickets.append(service.submit(event.query))
    service.pump()
    wall = time.perf_counter() - start
    unanswered = [ticket.id for ticket in tickets if not ticket.done]
    if unanswered:
        raise AssertionError(
            f"{len(unanswered)} queries left unanswered: {unanswered[:5]}"
        )
    answers = [ticket.answer for ticket in tickets]
    return TrafficResult(
        answers=answers,
        latencies_s=[answer.latency_s for answer in answers],
        wall_seconds=wall,
        ingested_batches=trace.num_batches,
    )
