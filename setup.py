"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in fully offline environments where the
``wheel`` package (required for PEP 660 editable installs) is unavailable:
``pip install -e . --no-use-pep517 --no-build-isolation`` falls back to the
legacy ``setup.py develop`` path, which needs this shim.
"""

from setuptools import setup

setup()
